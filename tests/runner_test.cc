// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Tests for src/runner/: the parallel ScenarioRunner must be a pure
// performance substrate -- per-run results bit-identical to serial execution,
// report order equal to submission order, and failure accounting that a
// bench binary can turn into its exit code.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/runner/runner.h"

namespace javmm {
namespace {

// Shorter-than-paper phases keep the suite fast; the workloads still reach a
// steady state that gives both engines real work to do.
Scenario FastScenario(const std::string& workload, bool assisted, uint64_t seed) {
  Scenario scenario;
  scenario.label = workload + (assisted ? "/JAVMM" : "/Xen") + "/s" + std::to_string(seed);
  scenario.spec = Workloads::Get(workload);
  scenario.engine = assisted ? EngineKind::kJavmm : EngineKind::kXenPrecopy;
  scenario.options.seed = seed;
  scenario.options.warmup = Duration::Seconds(20);
  scenario.options.cooldown = Duration::Seconds(5);
  return scenario;
}

// Field-by-field equality over everything MigrationResult carries. Byte
// identity of two runs of the same scenario is the determinism contract.
void ExpectIdenticalResults(const MigrationResult& a, const MigrationResult& b,
                            const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.assisted, b.assisted);
  EXPECT_EQ(a.fell_back_unassisted, b.fell_back_unassisted);
  EXPECT_EQ(a.started_at.nanos(), b.started_at.nanos());
  EXPECT_EQ(a.paused_at.nanos(), b.paused_at.nanos());
  EXPECT_EQ(a.resumed_at.nanos(), b.resumed_at.nanos());
  EXPECT_EQ(a.total_time.nanos(), b.total_time.nanos());
  EXPECT_EQ(a.vm_bytes, b.vm_bytes);
  EXPECT_EQ(a.total_wire_bytes, b.total_wire_bytes);
  EXPECT_EQ(a.pages_sent, b.pages_sent);
  EXPECT_EQ(a.pages_skipped_dirty, b.pages_skipped_dirty);
  EXPECT_EQ(a.pages_skipped_bitmap, b.pages_skipped_bitmap);
  EXPECT_EQ(a.last_iter_pages_sent, b.last_iter_pages_sent);
  EXPECT_EQ(a.last_iter_pages_skipped_bitmap, b.last_iter_pages_skipped_bitmap);
  EXPECT_EQ(a.downtime.safepoint_wait.nanos(), b.downtime.safepoint_wait.nanos());
  EXPECT_EQ(a.downtime.enforced_gc.nanos(), b.downtime.enforced_gc.nanos());
  EXPECT_EQ(a.downtime.final_bitmap_update.nanos(), b.downtime.final_bitmap_update.nanos());
  EXPECT_EQ(a.downtime.last_iter_transfer.nanos(), b.downtime.last_iter_transfer.nanos());
  EXPECT_EQ(a.downtime.resumption.nanos(), b.downtime.resumption.nanos());
  EXPECT_EQ(a.cpu_time.nanos(), b.cpu_time.nanos());
  EXPECT_EQ(a.pages_compressed, b.pages_compressed);
  EXPECT_EQ(a.pages_sent_delta, b.pages_sent_delta);
  EXPECT_EQ(a.pages_sent_raw, b.pages_sent_raw);
  EXPECT_EQ(a.lkm_bitmap_bytes, b.lkm_bitmap_bytes);
  EXPECT_EQ(a.lkm_pfn_cache_bytes, b.lkm_pfn_cache_bytes);
  EXPECT_EQ(a.control_losses, b.control_losses);
  EXPECT_EQ(a.control_rounds_ok, b.control_rounds_ok);
  EXPECT_EQ(a.burst_faults, b.burst_faults);
  EXPECT_EQ(a.round_timeouts, b.round_timeouts);
  EXPECT_EQ(a.retry_wire_bytes, b.retry_wire_bytes);
  EXPECT_EQ(a.backoff_time.nanos(), b.backoff_time.nanos());
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.degrade_reason, b.degrade_reason);
  EXPECT_EQ(a.verification.ok, b.verification.ok);
  EXPECT_EQ(a.verification.pages_checked, b.verification.pages_checked);
  EXPECT_EQ(a.verification.pages_skipped_garbage, b.verification.pages_skipped_garbage);
  EXPECT_EQ(a.verification.version_mismatches, b.verification.version_mismatches);
  EXPECT_EQ(a.trace_audit.ran, b.trace_audit.ran);
  EXPECT_EQ(a.trace_audit.ok, b.trace_audit.ok) << b.trace_audit.ToString();
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (size_t i = 0; i < a.iterations.size(); ++i) {
    const IterationRecord& x = a.iterations[i];
    const IterationRecord& y = b.iterations[i];
    EXPECT_EQ(x.index, y.index);
    EXPECT_EQ(x.duration.nanos(), y.duration.nanos());
    EXPECT_EQ(x.pages_scanned, y.pages_scanned);
    EXPECT_EQ(x.pages_sent, y.pages_sent);
    EXPECT_EQ(x.wire_bytes, y.wire_bytes);
    EXPECT_EQ(x.pages_skipped_dirty, y.pages_skipped_dirty);
    EXPECT_EQ(x.pages_skipped_bitmap, y.pages_skipped_bitmap);
    EXPECT_EQ(x.dirty_pages_after, y.dirty_pages_after);
  }
}

void ExpectIdenticalOutputs(const RunOutput& a, const RunOutput& b, const std::string& label) {
  ExpectIdenticalResults(a.result, b.result, label);
  EXPECT_EQ(a.young_at_migration, b.young_at_migration);
  EXPECT_EQ(a.old_at_migration, b.old_at_migration);
  EXPECT_EQ(a.observed_downtime.nanos(), b.observed_downtime.nanos());
  EXPECT_EQ(a.demand_faults, b.demand_faults);
  EXPECT_EQ(a.fault_stall.nanos(), b.fault_stall.nanos());
  EXPECT_EQ(a.degradation_window.nanos(), b.degradation_window.nanos());
}

std::string JsonOf(const RunReport& report) {
  std::ostringstream os;
  report.ExportJsonLines(os);
  return os.str();
}

TEST(ScenarioRunnerTest, SameSeedTwiceIsByteIdentical) {
  const Scenario scenario = FastScenario("derby", /*assisted=*/true, /*seed=*/7);
  const RunRecord first = ScenarioRunner::RunOne(scenario);
  const RunRecord second = ScenarioRunner::RunOne(scenario);
  ASSERT_TRUE(first.ran) << first.error;
  ASSERT_TRUE(second.ran) << second.error;
  EXPECT_TRUE(first.output.result.completed);
  EXPECT_TRUE(first.output.result.verification.ok);
  ExpectIdenticalOutputs(first.output, second.output, scenario.label);

  RunReport a;
  a.runs.push_back(first);
  RunReport b;
  b.runs.push_back(second);
  EXPECT_EQ(JsonOf(a), JsonOf(b));
}

TEST(ScenarioRunnerTest, ParallelBatchMatchesSerialBatch) {
  std::vector<Scenario> scenarios;
  for (const char* workload : {"crypto", "mpeg"}) {
    for (const bool assisted : {false, true}) {
      for (const uint64_t seed : {1u, 2u}) {
        scenarios.push_back(FastScenario(workload, assisted, seed));
      }
    }
  }
  ASSERT_EQ(scenarios.size(), 8u);

  const RunReport serial = ScenarioRunner(/*jobs=*/1).RunAll(scenarios);
  const RunReport parallel = ScenarioRunner(/*jobs=*/4).RunAll(scenarios);

  ASSERT_EQ(serial.runs.size(), scenarios.size());
  ASSERT_EQ(parallel.runs.size(), scenarios.size());
  for (size_t i = 0; i < scenarios.size(); ++i) {
    // Submission order is preserved under both execution modes.
    EXPECT_EQ(serial.runs[i].scenario.label, scenarios[i].label);
    EXPECT_EQ(parallel.runs[i].scenario.label, scenarios[i].label);
    ASSERT_TRUE(serial.runs[i].ran) << serial.runs[i].error;
    ASSERT_TRUE(parallel.runs[i].ran) << parallel.runs[i].error;
    ExpectIdenticalOutputs(serial.runs[i].output, parallel.runs[i].output, scenarios[i].label);
  }
  EXPECT_EQ(JsonOf(serial), JsonOf(parallel));
  EXPECT_TRUE(serial.all_ok());
  EXPECT_EQ(serial.failure_count(), parallel.failure_count());
  EXPECT_EQ(serial.fallbacks, parallel.fallbacks);
}

TEST(ScenarioRunnerTest, AbortedRunsAreCountedButNotFailures) {
  Scenario scenario = FastScenario("crypto", /*assisted=*/true, /*seed=*/3);
  scenario.options.lab.migration.abort_after_iterations = 2;
  const RunReport report = ScenarioRunner(/*jobs=*/2).RunAll({scenario, scenario});
  ASSERT_EQ(report.runs.size(), 2u);
  for (const RunRecord& rec : report.runs) {
    ASSERT_TRUE(rec.ran) << rec.error;
    EXPECT_TRUE(rec.aborted());
    EXPECT_FALSE(rec.failed());
    // The trace audit still runs on aborted migrations and must pass.
    EXPECT_TRUE(rec.output.result.trace_audit.ran);
    EXPECT_TRUE(rec.output.result.trace_audit.ok) << rec.output.result.trace_audit.ToString();
  }
  EXPECT_EQ(report.aborted, 2);
  EXPECT_EQ(report.failure_count(), 0);
  EXPECT_TRUE(report.all_ok());
}

// The per-iteration control round trip is one configuration field consumed by
// both the engine's metering and the trace auditor; changing it must keep the
// audit green (no second hardcoded copy to drift).
TEST(ScenarioRunnerTest, ControlBytesConfigSharedWithAuditor) {
  Scenario scenario = FastScenario("mpeg", /*assisted=*/false, /*seed=*/5);
  scenario.options.lab.migration.control_bytes_per_iteration = 2048;
  const RunRecord rec = ScenarioRunner::RunOne(scenario);
  ASSERT_TRUE(rec.ran) << rec.error;
  EXPECT_TRUE(rec.output.result.completed);
  ASSERT_TRUE(rec.output.result.trace_audit.ran);
  EXPECT_TRUE(rec.output.result.trace_audit.ok) << rec.output.result.trace_audit.ToString();
  EXPECT_FALSE(rec.failed());
}

// With an active FaultPlan the per-run Rng streams (lab seed + forked fault
// seed) must still make results a pure function of the Scenario: the same
// faulty scenarios executed serially and on a 4-worker pool are byte
// identical, including every retry/backoff/degrade counter.
TEST(ScenarioRunnerTest, FaultyScenariosParallelMatchesSerial) {
  std::vector<Scenario> scenarios;
  for (const bool assisted : {false, true}) {
    for (const uint64_t seed : {11u, 12u}) {
      Scenario scenario = FastScenario("crypto", assisted, seed);
      scenario.label += "/faulty";
      // An outage early in the migration guarantees at least one burst fault;
      // the bandwidth window and Bernoulli loss exercise the other paths.
      scenario.options.fault_spec = "bw:1s-3s@0.4;lat:0s-2s+5ms;out:500ms-650ms;loss:0.05";
      scenarios.push_back(scenario);
    }
  }
  const RunReport serial = ScenarioRunner(/*jobs=*/1).RunAll(scenarios);
  const RunReport parallel = ScenarioRunner(/*jobs=*/4).RunAll(scenarios);
  ASSERT_EQ(serial.runs.size(), scenarios.size());
  ASSERT_EQ(parallel.runs.size(), scenarios.size());
  int64_t faults_seen = 0;
  for (size_t i = 0; i < scenarios.size(); ++i) {
    ASSERT_TRUE(serial.runs[i].ran) << serial.runs[i].error;
    ASSERT_TRUE(parallel.runs[i].ran) << parallel.runs[i].error;
    ExpectIdenticalOutputs(serial.runs[i].output, parallel.runs[i].output, scenarios[i].label);
    const MigrationResult& r = serial.runs[i].output.result;
    EXPECT_TRUE(r.trace_audit.ran);
    EXPECT_TRUE(r.trace_audit.ok) << scenarios[i].label << ": " << r.trace_audit.ToString();
    faults_seen += r.burst_faults + r.control_losses;
  }
  EXPECT_GT(faults_seen, 0);  // The plan actually fired.
  EXPECT_EQ(JsonOf(serial), JsonOf(parallel));
}

// Regression for the bug where fault plans were silently ignored by the
// baseline engines: a non-neutral spec on kStopAndCopy/kPostcopy must
// measurably change the reported results, and the faulted runs must still
// verify and audit clean.
TEST(ScenarioRunnerTest, FaultSpecChangesBaselineResults) {
  for (const EngineKind kind : {EngineKind::kStopAndCopy, EngineKind::kPostcopy}) {
    Scenario healthy = FastScenario("crypto", /*assisted=*/false, /*seed=*/21);
    healthy.engine = kind;
    healthy.label = std::string(EngineKindName(kind)) + "/healthy";
    Scenario faulted = healthy;
    faulted.label = std::string(EngineKindName(kind)) + "/faulted";
    faulted.options.fault_spec = "lat:0s-60s+5ms;out:1s-1500ms;loss:0.2";
    const RunRecord h = ScenarioRunner::RunOne(healthy);
    const RunRecord f = ScenarioRunner::RunOne(faulted);
    ASSERT_TRUE(h.ran) << h.error;
    ASSERT_TRUE(f.ran) << f.error;
    SCOPED_TRACE(faulted.label);
    const MigrationResult& hr = h.output.result;
    const MigrationResult& fr = f.output.result;
    EXPECT_TRUE(fr.completed);
    EXPECT_TRUE(fr.verification.ok);
    ASSERT_TRUE(fr.trace_audit.ran);
    EXPECT_TRUE(fr.trace_audit.ok) << fr.trace_audit.ToString();
    // The healthy run must see no fault machinery at all.
    EXPECT_EQ(hr.burst_faults + hr.control_losses, 0);
    EXPECT_EQ(hr.retry_wire_bytes, 0);
    if (kind == EngineKind::kStopAndCopy) {
      // The outage lands inside the single paused copy: downtime grows.
      EXPECT_GE(fr.burst_faults, 1);
      EXPECT_GT(fr.retry_wire_bytes, 0);
      EXPECT_GT(fr.downtime.Total().nanos(), hr.downtime.Total().nanos());
    } else {
      // Post-copy pays in demand-fetch stall and a longer window. (The
      // outage may be straddled by a stall-debt clock jump rather than
      // cutting a pre-paging burst, so no burst-fault count is asserted.)
      EXPECT_GT(f.output.demand_faults, 0);
      EXPECT_GT(fr.control_losses, 0);
      EXPECT_GT(f.output.fault_stall.nanos(), h.output.fault_stall.nanos());
      EXPECT_GT(f.output.degradation_window.nanos(), h.output.degradation_window.nanos());
    }
  }
}

// Same determinism contract as FaultyScenariosParallelMatchesSerial, but for
// the baseline engines: faulted stop-and-copy and post-copy runs (including
// the Bernoulli demand-fetch loss draws off the forked fault seed) must be
// byte-identical between serial and 4-worker execution.
TEST(ScenarioRunnerTest, FaultyBaselinesParallelMatchesSerial) {
  std::vector<Scenario> scenarios;
  for (const EngineKind kind : {EngineKind::kStopAndCopy, EngineKind::kPostcopy}) {
    for (const uint64_t seed : {31u, 32u}) {
      Scenario scenario = FastScenario("crypto", /*assisted=*/false, seed);
      scenario.engine = kind;
      scenario.label =
          std::string(EngineKindName(kind)) + "/faulty/s" + std::to_string(seed);
      scenario.options.fault_spec = "bw:2s-4s@0.4;lat:0s-3s+5ms;out:1s-1200ms;loss:0.1";
      scenarios.push_back(scenario);
    }
  }
  const RunReport serial = ScenarioRunner(/*jobs=*/1).RunAll(scenarios);
  const RunReport parallel = ScenarioRunner(/*jobs=*/4).RunAll(scenarios);
  ASSERT_EQ(serial.runs.size(), scenarios.size());
  ASSERT_EQ(parallel.runs.size(), scenarios.size());
  int64_t faults_seen = 0;
  Duration postcopy_stall = Duration::Zero();
  for (size_t i = 0; i < scenarios.size(); ++i) {
    ASSERT_TRUE(serial.runs[i].ran) << serial.runs[i].error;
    ASSERT_TRUE(parallel.runs[i].ran) << parallel.runs[i].error;
    ExpectIdenticalOutputs(serial.runs[i].output, parallel.runs[i].output, scenarios[i].label);
    const MigrationResult& r = serial.runs[i].output.result;
    EXPECT_TRUE(r.trace_audit.ran);
    EXPECT_TRUE(r.trace_audit.ok) << scenarios[i].label << ": " << r.trace_audit.ToString();
    faults_seen += r.burst_faults + r.control_losses;
    postcopy_stall += serial.runs[i].output.fault_stall;
  }
  EXPECT_GT(faults_seen, 0);                 // The plan actually fired.
  EXPECT_GT(postcopy_stall.nanos(), 0);      // Including the demand channel.
  EXPECT_EQ(JsonOf(serial), JsonOf(parallel));
}

TEST(ScenarioRunnerTest, DegradedRunsAreTalliedAndExported) {
  Scenario scenario = FastScenario("mpeg", /*assisted=*/true, /*seed=*/9);
  scenario.options.fault_spec = "loss:1.0";  // Every control round is lost.
  const RunReport report = ScenarioRunner(/*jobs=*/1).RunAll({scenario});
  ASSERT_EQ(report.runs.size(), 1u);
  const RunRecord& rec = report.runs[0];
  ASSERT_TRUE(rec.ran) << rec.error;
  // Default degrade mode: the migration still lands via stop-and-copy.
  EXPECT_TRUE(rec.output.result.completed);
  EXPECT_TRUE(rec.degraded());
  EXPECT_FALSE(rec.failed());
  EXPECT_TRUE(rec.output.result.trace_audit.ok) << rec.output.result.trace_audit.ToString();
  EXPECT_EQ(report.degraded, 1);
  EXPECT_TRUE(report.all_ok());
  const std::string json = JsonOf(report);
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(json.find("\"control_losses\":6"), std::string::npos);
  EXPECT_NE(json.find("\"retry_wire_bytes\":"), std::string::npos);
}

TEST(ScenarioRunnerTest, MalformedFaultSpecIsARunError) {
  Scenario scenario = FastScenario("mpeg", /*assisted=*/false, /*seed=*/1);
  scenario.options.fault_spec = "bw:oops";
  const RunRecord rec = ScenarioRunner::RunOne(scenario);
  EXPECT_FALSE(rec.ran);
  EXPECT_TRUE(rec.failed());
  EXPECT_NE(rec.error.find("bad fault spec"), std::string::npos);
  const RunReport report = ScenarioRunner(/*jobs=*/1).RunAll({scenario});
  EXPECT_EQ(report.errors, 1);
  EXPECT_EQ(report.failure_count(), 1);
  EXPECT_FALSE(report.all_ok());
}

TEST(ScenarioRunnerTest, JsonExportOneLinePerRunInOrder) {
  std::vector<Scenario> scenarios = {FastScenario("mpeg", false, 1),
                                     FastScenario("mpeg", true, 1)};
  const RunReport report = ScenarioRunner(/*jobs=*/2).RunAll(scenarios);
  const std::string json = JsonOf(report);
  std::istringstream is(json);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"label\":\"mpeg/Xen/s1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"engine\":\"Xen\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"label\":\"mpeg/JAVMM/s1\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"engine\":\"JAVMM\""), std::string::npos);
  for (const std::string& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
    EXPECT_NE(l.find("\"verified\":true"), std::string::npos);
  }
}

}  // namespace
}  // namespace javmm
