// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Tests for the related-work baseline engines (stop-and-copy, post-copy),
// their fault-recovery paths (DESIGN.md §10), and the kFinalRewalk LKM
// update mode (§3.3.4 alternative approach).

#include <gtest/gtest.h>

#include "src/core/migration_lab.h"
#include "src/faults/faults.h"
#include "src/migration/baselines.h"

namespace javmm {
namespace {

LabConfig SmallLab(uint64_t seed = 1) {
  LabConfig config;
  config.vm_bytes = 512 * kMiB;
  config.seed = seed;
  config.os.resident_bytes = 64 * kMiB;
  config.os.hot_bytes = 8 * kMiB;
  return config;
}

WorkloadSpec SmallDerby() {
  WorkloadSpec spec = Workloads::Get("derby");
  spec.alloc_rate_bytes_per_sec = 100 * kMiB;
  spec.old_baseline_bytes = 32 * kMiB;
  spec.heap.young_max_bytes = 256 * kMiB;
  spec.heap.old_max_bytes = 128 * kMiB;
  return spec;
}

// ---- Stop-and-copy. ----

TEST(StopAndCopyTest, DowntimeEqualsTransferPlusResumption) {
  MigrationLab lab(SmallDerby(), SmallLab());
  lab.Run(Duration::Seconds(10));
  StopAndCopyEngine engine(&lab.guest(), lab.config().migration);
  const MigrationResult result = engine.Migrate();
  EXPECT_TRUE(result.completed);
  ASSERT_TRUE(result.verification.ok);
  // Everything is sent exactly once, while paused.
  EXPECT_EQ(result.pages_sent, lab.guest().memory().frame_count());
  EXPECT_EQ(result.downtime.Total().nanos(),
            (result.downtime.last_iter_transfer + result.downtime.resumption).nanos());
  // Downtime ~ VM size / goodput: 512 MiB at ~119 MiB/s is > 4 s.
  EXPECT_GT(result.downtime.Total().ToSecondsF(), 4.0);
  // And total time == downtime (non-live).
  EXPECT_EQ(result.total_time.nanos(), result.downtime.Total().nanos());
}

TEST(StopAndCopyTest, GuestMakesNoProgressDuringMigration) {
  MigrationLab lab(SmallDerby(), SmallLab());
  lab.Run(Duration::Seconds(5));
  const double ops_before = lab.app().ops_completed();
  StopAndCopyEngine engine(&lab.guest(), lab.config().migration);
  engine.Migrate();
  EXPECT_EQ(lab.app().ops_completed(), ops_before);
  lab.Run(Duration::Seconds(2));
  EXPECT_GT(lab.app().ops_completed(), ops_before);
}

TEST(StopAndCopyTest, CompressionShrinksWireBytesAndCostsCpu) {
  MigrationResult raw;
  {
    MigrationLab lab(SmallDerby(), SmallLab());
    lab.Run(Duration::Seconds(5));
    StopAndCopyEngine engine(&lab.guest(), lab.config().migration);
    raw = engine.Migrate();
    ASSERT_TRUE(raw.verification.ok);
    EXPECT_EQ(raw.pages_compressed, 0);
    EXPECT_EQ(raw.pages_sent_raw, raw.pages_sent);
  }
  LabConfig config = SmallLab();
  config.migration.compress_pages = true;
  MigrationLab lab(SmallDerby(), config);
  lab.Run(Duration::Seconds(5));
  StopAndCopyEngine engine(&lab.guest(), lab.config().migration);
  const MigrationResult result = engine.Migrate();
  ASSERT_TRUE(result.verification.ok);
  ASSERT_TRUE(result.trace_audit.ran);
  EXPECT_TRUE(result.trace_audit.ok) << result.trace_audit.ToString();
  EXPECT_EQ(result.pages_sent, raw.pages_sent);
  EXPECT_EQ(result.pages_compressed, result.pages_sent);
  EXPECT_EQ(result.pages_sent_raw, 0);
  // ~0.55 payload ratio: well under the raw wire volume, at a CPU premium,
  // and the smaller transfer shortens the pause.
  EXPECT_LT(result.total_wire_bytes, raw.total_wire_bytes * 7 / 10);
  EXPECT_GT(result.cpu_time.nanos(), raw.cpu_time.nanos());
  EXPECT_LT(result.downtime.Total().nanos(), raw.downtime.Total().nanos());
}

// ---- Post-copy. ----

TEST(PostcopyTest, TinyDowntimeButDegradationWindow) {
  MigrationLab lab(SmallDerby(), SmallLab());
  lab.Run(Duration::Seconds(10));
  PostcopyEngine::Config config;
  config.base = lab.config().migration;
  PostcopyEngine engine(&lab.guest(), config);
  const PostcopyResult result = engine.Migrate();
  EXPECT_TRUE(result.common.completed);
  EXPECT_TRUE(result.common.verification.ok);
  // Downtime: device state + resumption only -- well under a second.
  EXPECT_LT(result.common.downtime.Total().ToSecondsF(), 0.5);
  // But the degradation window covers streaming the whole VM.
  EXPECT_GT(result.degradation_window.ToSecondsF(), 3.0);
  EXPECT_GT(result.demand_faults, 0);
  EXPECT_GT(result.fault_stall.nanos(), 0);
}

TEST(PostcopyTest, EveryPageFetchedExactlyOnce) {
  MigrationLab lab(SmallDerby(), SmallLab());
  lab.Run(Duration::Seconds(5));
  PostcopyEngine::Config config;
  config.base = lab.config().migration;
  PostcopyEngine engine(&lab.guest(), config);
  const PostcopyResult result = engine.Migrate();
  EXPECT_EQ(result.common.pages_sent, lab.guest().memory().frame_count());
  // Guest keeps running afterwards.
  const double ops = lab.app().ops_completed();
  lab.Run(Duration::Seconds(2));
  EXPECT_GT(lab.app().ops_completed(), ops);
}

TEST(PostcopyTest, IdleGuestHasNoFaults) {
  // No workload: nothing writes, so no demand faults; pre-paging does it all.
  SimClock clock;
  GuestPhysicalMemory memory(64 * kMiB);
  GuestKernel kernel(&memory, &clock);
  PostcopyEngine::Config config;
  PostcopyEngine engine(&kernel, config);
  const PostcopyResult result = engine.Migrate();
  EXPECT_EQ(result.demand_faults, 0);
  EXPECT_TRUE(result.fault_stall.IsZero());
  EXPECT_TRUE(result.common.verification.ok);
}

// ---- Fault-aware baselines (DESIGN.md §10). ----
//
// Regression coverage for the bug where both baseline engines silently
// ignored MigrationConfig::faults: a non-neutral plan must measurably change
// what they report, and every recovery path must hold the accounting
// identities the trace auditor enforces.

TEST(PostcopyConfigDeathTest, RejectsNonPositivePrepageBatch) {
  SimClock clock;
  GuestPhysicalMemory memory(4 * kMiB);
  GuestKernel kernel(&memory, &clock);
  PostcopyEngine::Config config;
  config.prepage_batch_pages = 0;
  EXPECT_DEATH_IF_SUPPORTED(PostcopyEngine(&kernel, config), "prepage_batch_pages");
}

TEST(StopAndCopyFaultTest, OutageIsWaitedOutInsideThePause) {
  MigrationResult healthy;
  {
    MigrationLab lab(SmallDerby(), SmallLab());
    lab.Run(Duration::Seconds(10));
    StopAndCopyEngine engine(&lab.guest(), lab.config().migration);
    healthy = engine.Migrate();
    ASSERT_TRUE(healthy.verification.ok);
  }
  LabConfig config = SmallLab();
  config.migration.faults = FaultPlan::MustParse("out:1s-2s");
  MigrationLab lab(SmallDerby(), config);
  lab.Run(Duration::Seconds(10));
  StopAndCopyEngine engine(&lab.guest(), lab.config().migration);
  const MigrationResult result = engine.Migrate();
  EXPECT_TRUE(result.completed);
  ASSERT_TRUE(result.verification.ok);
  ASSERT_TRUE(result.trace_audit.ran);
  EXPECT_TRUE(result.trace_audit.ok) << result.trace_audit.ToString();
  // The outage cuts one burst mid-transfer; the engine waits it out and
  // resends, so downtime absorbs the outage while the page count stays put.
  EXPECT_GE(result.burst_faults, 1);
  EXPECT_GT(result.retry_wire_bytes, 0);
  EXPECT_GT(result.backoff_time.nanos(), 0);
  EXPECT_EQ(result.pages_sent, healthy.pages_sent);
  EXPECT_GT(result.downtime.Total().nanos(),
            healthy.downtime.Total().nanos() + Duration::Millis(900).nanos());
  EXPECT_FALSE(result.degraded);  // Stop-and-copy never degrades; it waits.
}

TEST(PostcopyFaultTest, OutageDuringPauseGrowsDowntime) {
  // An outage covering the device-state transfer: the engine waits it out
  // inside the pause and retries, so the paper's "tiny downtime" claim bends
  // exactly by the outage length.
  SimClock clock;
  GuestPhysicalMemory memory(64 * kMiB);
  GuestKernel kernel(&memory, &clock);
  PostcopyEngine::Config config;
  config.base.faults = FaultPlan::MustParse("out:0s-1s");
  config.base.fault_seed = 7;
  PostcopyEngine engine(&kernel, config);
  const PostcopyResult result = engine.Migrate();
  EXPECT_TRUE(result.common.completed);
  EXPECT_TRUE(result.common.verification.ok);
  ASSERT_TRUE(result.common.trace_audit.ran);
  EXPECT_TRUE(result.common.trace_audit.ok) << result.common.trace_audit.ToString();
  EXPECT_GE(result.common.burst_faults, 1);
  // Healthy downtime is device state + resumption, ~0.2 s; the outage adds
  // its full second.
  EXPECT_GT(result.common.downtime.Total().ToSecondsF(), 1.0);
  EXPECT_LT(result.common.downtime.Total().ToSecondsF(), 1.5);
  EXPECT_EQ(result.demand_faults, 0);  // Idle guest either way.
}

TEST(PostcopyFaultTest, LatencySpikeIsPaidPerDemandFetch) {
  PostcopyResult healthy;
  {
    MigrationLab lab(SmallDerby(), SmallLab());
    lab.Run(Duration::Seconds(10));
    PostcopyEngine::Config config;
    config.base = lab.config().migration;
    PostcopyEngine engine(&lab.guest(), config);
    healthy = engine.Migrate();
    ASSERT_GT(healthy.demand_faults, 0);
  }
  LabConfig lab_config = SmallLab();
  // The window must outlive the whole (stall-stretched) degradation window,
  // so every demand fetch pays the spike.
  lab_config.migration.faults = FaultPlan::MustParse("lat:0s-3600s+10ms");
  MigrationLab lab(SmallDerby(), lab_config);
  lab.Run(Duration::Seconds(10));
  PostcopyEngine::Config config;
  config.base = lab.config().migration;
  PostcopyEngine engine(&lab.guest(), config);
  const PostcopyResult result = engine.Migrate();
  ASSERT_TRUE(result.common.verification.ok);
  ASSERT_TRUE(result.common.trace_audit.ran);
  EXPECT_TRUE(result.common.trace_audit.ok) << result.common.trace_audit.ToString();
  ASSERT_GT(result.demand_faults, 0);
  // Every demand fetch rides the inflated round trip: at least 20 ms extra
  // per fault (10 ms each way) on top of the healthy sub-millisecond stall.
  EXPECT_GT(result.fault_stall.nanos(),
            result.demand_faults * Duration::Millis(20).nanos());
  EXPECT_GT(result.fault_stall.nanos(), healthy.fault_stall.nanos());
  // A latency-only plan never loses packets or cuts transfers.
  EXPECT_EQ(result.common.control_losses, 0);
  EXPECT_EQ(result.common.burst_faults, 0);
}

TEST(PostcopyFaultTest, ControlLossStallsAndRetriesDemandFetches) {
  LabConfig lab_config = SmallLab();
  lab_config.migration.faults = FaultPlan::MustParse("loss:0.25");
  MigrationLab lab(SmallDerby(), lab_config);
  lab.Run(Duration::Seconds(10));
  PostcopyEngine::Config config;
  config.base = lab.config().migration;
  PostcopyEngine engine(&lab.guest(), config);
  const PostcopyResult result = engine.Migrate();
  ASSERT_TRUE(result.common.verification.ok);
  ASSERT_TRUE(result.common.trace_audit.ran);
  EXPECT_TRUE(result.common.trace_audit.ok) << result.common.trace_audit.ToString();
  ASSERT_GT(result.demand_faults, 0);
  EXPECT_GT(result.common.control_losses, 0);
  EXPECT_GT(result.common.retry_wire_bytes, 0);
  EXPECT_GT(result.common.backoff_time.nanos(), 0);
  // Each lost fetch stalls the vCPU for the loss timeout plus the backoff.
  EXPECT_GT(result.fault_stall.nanos(),
            result.common.control_losses * config.base.control_loss_timeout.nanos());
  EXPECT_FALSE(result.common.degraded);  // Losses stall; they never degrade.
}

TEST(PostcopyFaultTest, PrepageBudgetExhaustionDegradesToDemandPaging) {
  // Bandwidth collapse stretches every pre-paging burst to ~0.9 s while a
  // chain of 2.5 s outages with 100 ms gaps guarantees each retry is cut
  // again: six straight failures exhaust max_burst_retries (5) and the
  // stream degrades to the one-page demand trickle. The migration must still
  // land with every page resident -- degrade is a mode switch, not an abort.
  SimClock clock;
  GuestPhysicalMemory memory(64 * kMiB);
  GuestKernel kernel(&memory, &clock);
  PostcopyEngine::Config config;
  config.base.faults = FaultPlan::MustParse(
      "bw:300ms-60s@0.01;out:400ms-2900ms;out:3s-5500ms;out:5600ms-8100ms;"
      "out:8200ms-10700ms;out:10800ms-13300ms;out:13400ms-15900ms");
  config.base.fault_seed = 7;
  PostcopyEngine engine(&kernel, config);
  const PostcopyResult result = engine.Migrate();
  EXPECT_TRUE(result.common.completed);
  EXPECT_TRUE(result.common.verification.ok);
  ASSERT_TRUE(result.common.trace_audit.ran);
  EXPECT_TRUE(result.common.trace_audit.ok) << result.common.trace_audit.ToString();
  EXPECT_TRUE(result.common.degraded);
  EXPECT_EQ(result.common.degrade_reason, DegradeReason::kBurstRetries);
  EXPECT_GE(result.common.burst_faults, 6);
  // Idle guest: every page still arrives via the background stream, one page
  // at a time after the degrade, and the window stretches past the outages.
  EXPECT_EQ(result.demand_faults, 0);
  EXPECT_EQ(result.common.pages_sent, memory.frame_count());
  EXPECT_EQ(result.prepage_pages, memory.frame_count());
  EXPECT_GT(result.degradation_window.ToSecondsF(), 30.0);
}

// ---- Write observers. ----

class CountingObserver : public WriteObserver {
 public:
  void OnGuestWrite(Pfn pfn) override {
    ++count_;
    last_ = pfn;
  }
  int64_t count_ = 0;
  Pfn last_ = kInvalidPfn;
};

TEST(WriteObserverTest, AttachedObserverSeesWrites) {
  GuestPhysicalMemory memory(16 * kPageSize);
  CountingObserver observer;
  memory.AttachWriteObserver(&observer);
  memory.Write(5);
  memory.Write(7);
  EXPECT_EQ(observer.count_, 2);
  EXPECT_EQ(observer.last_, 7);
  memory.DetachWriteObserver(&observer);
  memory.Write(5);
  EXPECT_EQ(observer.count_, 2);
}

// ---- kFinalRewalk update mode. ----

TEST(FinalRewalkTest, AssistedMigrationVerifiesWithRewalkMode) {
  LabConfig config = SmallLab(5);
  config.lkm.update_mode = BitmapUpdateMode::kFinalRewalk;
  config.migration.application_assisted = true;
  MigrationLab lab(SmallDerby(), config);
  lab.Run(Duration::Seconds(30));
  const MigrationResult result = lab.Migrate();
  EXPECT_TRUE(result.assisted);
  ASSERT_TRUE(result.verification.ok) << result.verification.detail;
  EXPECT_GT(result.pages_skipped_bitmap, 0);
  // Second migration still works (state resets cleanly).
  lab.Run(Duration::Seconds(10));
  const MigrationResult second = lab.Migrate();
  ASSERT_TRUE(second.verification.ok) << second.verification.detail;
}

TEST(FinalRewalkTest, RewalkModeSurvivesYoungShrink) {
  // A shrinking young generation with NO shrink notifications: the rewalk
  // must reconcile everything at the final update.
  LabConfig config = SmallLab(6);
  config.lkm.update_mode = BitmapUpdateMode::kFinalRewalk;
  config.migration.application_assisted = true;
  WorkloadSpec spec = SmallDerby();
  spec.alloc_rate_bytes_per_sec = 4 * kMiB;  // Low demand...
  spec.heap.young_initial_bytes = 128 * kMiB;  // ...oversized heap => shrinks.
  spec.heap.shrink_headroom = 1.3;
  MigrationLab lab(spec, config);
  lab.Run(Duration::Seconds(60));
  const MigrationResult result = lab.Migrate();
  ASSERT_TRUE(result.verification.ok) << result.verification.detail;
  EXPECT_EQ(lab.guest().lkm()->protocol_violations(), 0);
}

TEST(FinalRewalkTest, FinalUpdateCostsMoreThanIncremental) {
  // The deferred approach's final update walks every skip-over PTE; the
  // incremental one only diffs. The paper deferred the former for exactly
  // this reason.
  Duration rewalk_cost;
  Duration incremental_cost;
  for (const BitmapUpdateMode mode :
       {BitmapUpdateMode::kFinalRewalk, BitmapUpdateMode::kIncremental}) {
    LabConfig config = SmallLab(7);
    config.lkm.update_mode = mode;
    config.migration.application_assisted = true;
    MigrationLab lab(SmallDerby(), config);
    lab.Run(Duration::Seconds(30));
    const MigrationResult result = lab.Migrate();
    ASSERT_TRUE(result.verification.ok);
    if (mode == BitmapUpdateMode::kFinalRewalk) {
      rewalk_cost = result.downtime.final_bitmap_update;
    } else {
      incremental_cost = result.downtime.final_bitmap_update;
    }
  }
  EXPECT_GT(rewalk_cost.nanos(), incremental_cost.nanos());
}

TEST(FinalRewalkTest, ShrinkNoticesIgnoredWithoutViolation) {
  SimClock clock;
  GuestPhysicalMemory memory(256 * kPageSize);
  GuestKernel kernel(&memory, &clock);
  LkmConfig config;
  config.update_mode = BitmapUpdateMode::kFinalRewalk;
  Lkm& lkm = kernel.LoadLkm(config);
  const AppId pid = kernel.CreateProcess("app");
  lkm.NotifyAreaShrunk(pid, VaRange{0, 4096});
  EXPECT_EQ(lkm.protocol_violations(), 0);
}

}  // namespace
}  // namespace javmm
