// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Tests for the related-work baseline engines (stop-and-copy, post-copy) and
// the kFinalRewalk LKM update mode (§3.3.4 alternative approach).

#include <gtest/gtest.h>

#include "src/core/migration_lab.h"
#include "src/migration/baselines.h"

namespace javmm {
namespace {

LabConfig SmallLab(uint64_t seed = 1) {
  LabConfig config;
  config.vm_bytes = 512 * kMiB;
  config.seed = seed;
  config.os.resident_bytes = 64 * kMiB;
  config.os.hot_bytes = 8 * kMiB;
  return config;
}

WorkloadSpec SmallDerby() {
  WorkloadSpec spec = Workloads::Get("derby");
  spec.alloc_rate_bytes_per_sec = 100 * kMiB;
  spec.old_baseline_bytes = 32 * kMiB;
  spec.heap.young_max_bytes = 256 * kMiB;
  spec.heap.old_max_bytes = 128 * kMiB;
  return spec;
}

// ---- Stop-and-copy. ----

TEST(StopAndCopyTest, DowntimeEqualsTransferPlusResumption) {
  MigrationLab lab(SmallDerby(), SmallLab());
  lab.Run(Duration::Seconds(10));
  StopAndCopyEngine engine(&lab.guest(), lab.config().migration);
  const MigrationResult result = engine.Migrate();
  EXPECT_TRUE(result.completed);
  ASSERT_TRUE(result.verification.ok);
  // Everything is sent exactly once, while paused.
  EXPECT_EQ(result.pages_sent, lab.guest().memory().frame_count());
  EXPECT_EQ(result.downtime.Total().nanos(),
            (result.downtime.last_iter_transfer + result.downtime.resumption).nanos());
  // Downtime ~ VM size / goodput: 512 MiB at ~119 MiB/s is > 4 s.
  EXPECT_GT(result.downtime.Total().ToSecondsF(), 4.0);
  // And total time == downtime (non-live).
  EXPECT_EQ(result.total_time.nanos(), result.downtime.Total().nanos());
}

TEST(StopAndCopyTest, GuestMakesNoProgressDuringMigration) {
  MigrationLab lab(SmallDerby(), SmallLab());
  lab.Run(Duration::Seconds(5));
  const double ops_before = lab.app().ops_completed();
  StopAndCopyEngine engine(&lab.guest(), lab.config().migration);
  engine.Migrate();
  EXPECT_EQ(lab.app().ops_completed(), ops_before);
  lab.Run(Duration::Seconds(2));
  EXPECT_GT(lab.app().ops_completed(), ops_before);
}

// ---- Post-copy. ----

TEST(PostcopyTest, TinyDowntimeButDegradationWindow) {
  MigrationLab lab(SmallDerby(), SmallLab());
  lab.Run(Duration::Seconds(10));
  PostcopyEngine::Config config;
  config.base = lab.config().migration;
  PostcopyEngine engine(&lab.guest(), config);
  const PostcopyResult result = engine.Migrate();
  EXPECT_TRUE(result.common.completed);
  EXPECT_TRUE(result.common.verification.ok);
  // Downtime: device state + resumption only -- well under a second.
  EXPECT_LT(result.common.downtime.Total().ToSecondsF(), 0.5);
  // But the degradation window covers streaming the whole VM.
  EXPECT_GT(result.degradation_window.ToSecondsF(), 3.0);
  EXPECT_GT(result.demand_faults, 0);
  EXPECT_GT(result.fault_stall.nanos(), 0);
}

TEST(PostcopyTest, EveryPageFetchedExactlyOnce) {
  MigrationLab lab(SmallDerby(), SmallLab());
  lab.Run(Duration::Seconds(5));
  PostcopyEngine::Config config;
  config.base = lab.config().migration;
  PostcopyEngine engine(&lab.guest(), config);
  const PostcopyResult result = engine.Migrate();
  EXPECT_EQ(result.common.pages_sent, lab.guest().memory().frame_count());
  // Guest keeps running afterwards.
  const double ops = lab.app().ops_completed();
  lab.Run(Duration::Seconds(2));
  EXPECT_GT(lab.app().ops_completed(), ops);
}

TEST(PostcopyTest, IdleGuestHasNoFaults) {
  // No workload: nothing writes, so no demand faults; pre-paging does it all.
  SimClock clock;
  GuestPhysicalMemory memory(64 * kMiB);
  GuestKernel kernel(&memory, &clock);
  PostcopyEngine::Config config;
  PostcopyEngine engine(&kernel, config);
  const PostcopyResult result = engine.Migrate();
  EXPECT_EQ(result.demand_faults, 0);
  EXPECT_TRUE(result.fault_stall.IsZero());
  EXPECT_TRUE(result.common.verification.ok);
}

// ---- Write observers. ----

class CountingObserver : public WriteObserver {
 public:
  void OnGuestWrite(Pfn pfn) override {
    ++count_;
    last_ = pfn;
  }
  int64_t count_ = 0;
  Pfn last_ = kInvalidPfn;
};

TEST(WriteObserverTest, AttachedObserverSeesWrites) {
  GuestPhysicalMemory memory(16 * kPageSize);
  CountingObserver observer;
  memory.AttachWriteObserver(&observer);
  memory.Write(5);
  memory.Write(7);
  EXPECT_EQ(observer.count_, 2);
  EXPECT_EQ(observer.last_, 7);
  memory.DetachWriteObserver(&observer);
  memory.Write(5);
  EXPECT_EQ(observer.count_, 2);
}

// ---- kFinalRewalk update mode. ----

TEST(FinalRewalkTest, AssistedMigrationVerifiesWithRewalkMode) {
  LabConfig config = SmallLab(5);
  config.lkm.update_mode = BitmapUpdateMode::kFinalRewalk;
  config.migration.application_assisted = true;
  MigrationLab lab(SmallDerby(), config);
  lab.Run(Duration::Seconds(30));
  const MigrationResult result = lab.Migrate();
  EXPECT_TRUE(result.assisted);
  ASSERT_TRUE(result.verification.ok) << result.verification.detail;
  EXPECT_GT(result.pages_skipped_bitmap, 0);
  // Second migration still works (state resets cleanly).
  lab.Run(Duration::Seconds(10));
  const MigrationResult second = lab.Migrate();
  ASSERT_TRUE(second.verification.ok) << second.verification.detail;
}

TEST(FinalRewalkTest, RewalkModeSurvivesYoungShrink) {
  // A shrinking young generation with NO shrink notifications: the rewalk
  // must reconcile everything at the final update.
  LabConfig config = SmallLab(6);
  config.lkm.update_mode = BitmapUpdateMode::kFinalRewalk;
  config.migration.application_assisted = true;
  WorkloadSpec spec = SmallDerby();
  spec.alloc_rate_bytes_per_sec = 4 * kMiB;  // Low demand...
  spec.heap.young_initial_bytes = 128 * kMiB;  // ...oversized heap => shrinks.
  spec.heap.shrink_headroom = 1.3;
  MigrationLab lab(spec, config);
  lab.Run(Duration::Seconds(60));
  const MigrationResult result = lab.Migrate();
  ASSERT_TRUE(result.verification.ok) << result.verification.detail;
  EXPECT_EQ(lab.guest().lkm()->protocol_violations(), 0);
}

TEST(FinalRewalkTest, FinalUpdateCostsMoreThanIncremental) {
  // The deferred approach's final update walks every skip-over PTE; the
  // incremental one only diffs. The paper deferred the former for exactly
  // this reason.
  Duration rewalk_cost;
  Duration incremental_cost;
  for (const BitmapUpdateMode mode :
       {BitmapUpdateMode::kFinalRewalk, BitmapUpdateMode::kIncremental}) {
    LabConfig config = SmallLab(7);
    config.lkm.update_mode = mode;
    config.migration.application_assisted = true;
    MigrationLab lab(SmallDerby(), config);
    lab.Run(Duration::Seconds(30));
    const MigrationResult result = lab.Migrate();
    ASSERT_TRUE(result.verification.ok);
    if (mode == BitmapUpdateMode::kFinalRewalk) {
      rewalk_cost = result.downtime.final_bitmap_update;
    } else {
      incremental_cost = result.downtime.final_bitmap_update;
    }
  }
  EXPECT_GT(rewalk_cost.nanos(), incremental_cost.nanos());
}

TEST(FinalRewalkTest, ShrinkNoticesIgnoredWithoutViolation) {
  SimClock clock;
  GuestPhysicalMemory memory(256 * kPageSize);
  GuestKernel kernel(&memory, &clock);
  LkmConfig config;
  config.update_mode = BitmapUpdateMode::kFinalRewalk;
  Lkm& lkm = kernel.LoadLkm(config);
  const AppId pid = kernel.CreateProcess("app");
  lkm.NotifyAreaShrunk(pid, VaRange{0, 4096});
  EXPECT_EQ(lkm.protocol_violations(), 0);
}

}  // namespace
}  // namespace javmm
