// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Unit tests for the simulation kernel: event queue + clock.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/clock.h"
#include "src/sim/event_queue.h"
#include "src/sim/process.h"

namespace javmm {
namespace {

TEST(EventQueueTest, FiresInTimestampOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(TimePoint::FromNanos(30), [&] { fired.push_back(3); });
  q.Schedule(TimePoint::FromNanos(10), [&] { fired.push_back(1); });
  q.Schedule(TimePoint::FromNanos(20), [&] { fired.push_back(2); });
  q.FireDueEvents(TimePoint::FromNanos(30));
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimestampsFireFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(TimePoint::FromNanos(10), [&fired, i] { fired.push_back(i); });
  }
  q.FireDueEvents(TimePoint::FromNanos(10));
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, OnlyDueEventsFire) {
  EventQueue q;
  int fired = 0;
  q.Schedule(TimePoint::FromNanos(10), [&] { ++fired; });
  q.Schedule(TimePoint::FromNanos(20), [&] { ++fired; });
  q.FireDueEvents(TimePoint::FromNanos(15));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending_count(), 1u);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const EventQueue::EventId id = q.Schedule(TimePoint::FromNanos(10), [&] { ++fired; });
  q.Cancel(id);
  q.FireDueEvents(TimePoint::FromNanos(100));
  EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.Cancel(12345);  // Must not crash.
  EXPECT_EQ(q.pending_count(), 0u);
}

TEST(EventQueueTest, CallbackMayScheduleAtSameInstant) {
  EventQueue q;
  int fired = 0;
  q.Schedule(TimePoint::FromNanos(10), [&] {
    ++fired;
    q.Schedule(TimePoint::FromNanos(10), [&] { ++fired; });
  });
  q.FireDueEvents(TimePoint::FromNanos(10));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, NextEventTime) {
  EventQueue q;
  EXPECT_FALSE(q.NextEventTime().has_value());
  q.Schedule(TimePoint::FromNanos(50), [] {});
  q.Schedule(TimePoint::FromNanos(20), [] {});
  ASSERT_TRUE(q.NextEventTime().has_value());
  EXPECT_EQ(q.NextEventTime()->nanos(), 20);
}

// A process that records the intervals it receives.
class RecordingProcess : public Process {
 public:
  void RunFor(TimePoint start, Duration dt) override { slices_.push_back({start, dt}); }
  Duration TotalTime() const {
    Duration total = Duration::Zero();
    for (const auto& s : slices_) {
      total += s.second;
    }
    return total;
  }
  const std::vector<std::pair<TimePoint, Duration>>& slices() const { return slices_; }

 private:
  std::vector<std::pair<TimePoint, Duration>> slices_;
};

TEST(SimClockTest, AdvanceMovesNow) {
  SimClock clock;
  clock.Advance(Duration::Seconds(2));
  EXPECT_EQ(clock.now().nanos(), Duration::Seconds(2).nanos());
}

TEST(SimClockTest, ProcessesReceiveFullInterval) {
  SimClock clock;
  RecordingProcess p;
  clock.AddProcess(&p);
  clock.Advance(Duration::Seconds(3));
  EXPECT_EQ(p.TotalTime().nanos(), Duration::Seconds(3).nanos());
}

TEST(SimClockTest, AdvanceSubdividesAtEventBoundaries) {
  SimClock clock;
  RecordingProcess p;
  clock.AddProcess(&p);
  TimePoint fired_at;
  clock.events().Schedule(TimePoint::FromNanos(Duration::Seconds(1).nanos()),
                          [&] { fired_at = clock.now(); });
  clock.Advance(Duration::Seconds(3));
  // The process ran in two slices: [0,1s) and [1s,3s).
  ASSERT_EQ(p.slices().size(), 2u);
  EXPECT_EQ(p.slices()[0].second.nanos(), Duration::Seconds(1).nanos());
  EXPECT_EQ(p.slices()[1].second.nanos(), Duration::Seconds(2).nanos());
  EXPECT_EQ(fired_at.nanos(), Duration::Seconds(1).nanos());
  EXPECT_EQ(p.TotalTime().nanos(), Duration::Seconds(3).nanos());
}

TEST(SimClockTest, RepeatingEventChain) {
  SimClock clock;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    clock.events().Schedule(clock.now() + Duration::Seconds(1), tick);
  };
  clock.events().Schedule(clock.now() + Duration::Seconds(1), tick);
  clock.Advance(Duration::SecondsF(5.5));
  EXPECT_EQ(ticks, 5);
}

TEST(SimClockTest, RemoveProcessStopsDelivery) {
  SimClock clock;
  RecordingProcess p;
  clock.AddProcess(&p);
  clock.Advance(Duration::Seconds(1));
  clock.RemoveProcess(&p);
  clock.Advance(Duration::Seconds(1));
  EXPECT_EQ(p.TotalTime().nanos(), Duration::Seconds(1).nanos());
}

TEST(SimClockTest, AdvanceToPastIsNoop) {
  SimClock clock;
  clock.Advance(Duration::Seconds(5));
  clock.AdvanceTo(TimePoint::Epoch() + Duration::Seconds(3));
  EXPECT_EQ(clock.now().nanos(), Duration::Seconds(5).nanos());
  clock.AdvanceTo(TimePoint::Epoch() + Duration::Seconds(7));
  EXPECT_EQ(clock.now().nanos(), Duration::Seconds(7).nanos());
}

TEST(SimClockTest, ZeroAdvanceFiresDueEvents) {
  SimClock clock;
  int fired = 0;
  clock.events().Schedule(clock.now(), [&] { ++fired; });
  clock.Advance(Duration::Zero());
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace javmm
