// Copyright (c) 2026 The JAVMM Reproduction Authors.
// End-to-end JAVMM tests: assisted migration of Java VMs, safety fallback,
// multi-application guests, cache-application skip-over.

#include <gtest/gtest.h>

#include "src/core/migration_lab.h"
#include "src/core/policy.h"
#include "src/workload/cache_application.h"

namespace javmm {
namespace {

// Scaled-down lab (512 MiB VM, scaled workload) so each test runs in
// milliseconds while exercising every code path.
LabConfig SmallLab(bool assisted, uint64_t seed = 1) {
  LabConfig config;
  config.vm_bytes = 512 * kMiB;
  config.seed = seed;
  config.os.resident_bytes = 64 * kMiB;
  config.os.hot_bytes = 8 * kMiB;
  config.migration.application_assisted = assisted;
  return config;
}

WorkloadSpec SmallDerby() {
  WorkloadSpec spec = Workloads::Get("derby");
  spec.alloc_rate_bytes_per_sec = 120 * kMiB;
  spec.old_baseline_bytes = 32 * kMiB;
  spec.heap.young_max_bytes = 256 * kMiB;
  spec.heap.young_initial_bytes = 32 * kMiB;
  spec.heap.old_max_bytes = 128 * kMiB;
  return spec;
}

TEST(JavmmTest, AssistedMigrationVerifies) {
  MigrationLab lab(SmallDerby(), SmallLab(/*assisted=*/true));
  lab.Run(Duration::Seconds(30));
  const MigrationResult result = lab.Migrate();
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.assisted);
  ASSERT_TRUE(result.verification.ok) << result.verification.detail;
  EXPECT_GT(result.verification.required_pfns_checked, 0);
  EXPECT_GT(result.pages_skipped_bitmap, 0);
  EXPECT_GT(result.verification.pages_skipped_garbage, 0);
  // Workload continues correctly at the destination.
  const double ops_before = lab.app().ops_completed();
  lab.Run(Duration::Seconds(10));
  EXPECT_GT(lab.app().ops_completed(), ops_before);
}

TEST(JavmmTest, AssistedBeatsVanillaOnAllThreeMetrics) {
  MigrationResult xen;
  MigrationResult assisted;
  {
    MigrationLab lab(SmallDerby(), SmallLab(false, 3));
    lab.Run(Duration::Seconds(30));
    xen = lab.Migrate();
  }
  {
    MigrationLab lab(SmallDerby(), SmallLab(true, 3));
    lab.Run(Duration::Seconds(30));
    assisted = lab.Migrate();
  }
  ASSERT_TRUE(xen.verification.ok);
  ASSERT_TRUE(assisted.verification.ok);
  EXPECT_LT(assisted.total_time.nanos(), xen.total_time.nanos());
  EXPECT_LT(assisted.total_wire_bytes, xen.total_wire_bytes);
  EXPECT_LT(assisted.downtime.Total().nanos(), xen.downtime.Total().nanos());
  EXPECT_LT(assisted.cpu_time.nanos(), xen.cpu_time.nanos());
}

TEST(JavmmTest, DowntimeBreakdownPopulated) {
  MigrationLab lab(SmallDerby(), SmallLab(true));
  lab.Run(Duration::Seconds(30));
  const MigrationResult result = lab.Migrate();
  EXPECT_GT(result.downtime.enforced_gc.nanos(), 0);
  EXPECT_GT(result.downtime.final_bitmap_update.nanos(), 0);
  EXPECT_GT(result.downtime.last_iter_transfer.nanos(), 0);
  EXPECT_EQ(result.downtime.resumption.nanos(), Duration::Millis(170).nanos());
  // The paper measures the final bitmap update under 300 us.
  EXPECT_LT(result.downtime.final_bitmap_update.nanos(), Duration::Micros(300).nanos());
}

TEST(JavmmTest, FrameworkMemoryOverheadIsSmall) {
  MigrationLab lab(SmallDerby(), SmallLab(true));
  lab.Run(Duration::Seconds(30));
  const MigrationResult result = lab.Migrate();
  // §3.3.3/§5.3: 32 KiB bitmap per GiB; PFN cache ~1 MiB per GiB of skip area.
  EXPECT_EQ(result.lkm_bitmap_bytes, PagesForBytes(512 * kMiB) / 8);
  EXPECT_LT(result.lkm_pfn_cache_bytes, kMiB);
}

TEST(JavmmTest, NonCooperativeAppTriggersSafeFallback) {
  LabConfig config = SmallLab(/*assisted=*/true, 5);
  config.agent.cooperative = false;
  config.lkm.straggler_timeout = Duration::Seconds(60);  // Longer than the
  // daemon's own patience, forcing the daemon-side fallback path.
  config.migration.lkm_response_timeout = Duration::Seconds(2);
  MigrationLab lab(SmallDerby(), config);
  lab.Run(Duration::Seconds(20));
  const MigrationResult result = lab.Migrate();
  EXPECT_TRUE(result.fell_back_unassisted);
  // Correctness preserved: everything ever skipped was ultimately sent.
  ASSERT_TRUE(result.verification.ok) << result.verification.detail;
  EXPECT_EQ(result.verification.pages_skipped_garbage, 0);
}

TEST(JavmmTest, StragglerTimeoutStillCompletesAssisted) {
  LabConfig config = SmallLab(/*assisted=*/true, 6);
  config.agent.cooperative = false;
  config.lkm.straggler_timeout = Duration::Seconds(2);  // LKM gives up first.
  MigrationLab lab(SmallDerby(), config);
  lab.Run(Duration::Seconds(20));
  const MigrationResult result = lab.Migrate();
  EXPECT_FALSE(result.fell_back_unassisted);  // LKM answered (after revoking).
  ASSERT_TRUE(result.verification.ok) << result.verification.detail;
}

TEST(JavmmTest, MigrateTwiceSameGuest) {
  MigrationLab lab(SmallDerby(), SmallLab(true, 7));
  lab.Run(Duration::Seconds(20));
  const MigrationResult first = lab.Migrate();
  ASSERT_TRUE(first.verification.ok);
  lab.Run(Duration::Seconds(10));
  const MigrationResult second = lab.Migrate();
  ASSERT_TRUE(second.verification.ok) << second.verification.detail;
  EXPECT_TRUE(second.assisted);
  EXPECT_GT(second.pages_skipped_bitmap, 0);
}

TEST(JavmmTest, UnassistedIgnoresLkmEntirely) {
  MigrationLab lab(SmallDerby(), SmallLab(false, 8));
  lab.Run(Duration::Seconds(20));
  const MigrationResult result = lab.Migrate();
  EXPECT_FALSE(result.assisted);
  EXPECT_EQ(result.pages_skipped_bitmap, 0);
  EXPECT_EQ(result.verification.pages_skipped_garbage, 0);
  ASSERT_TRUE(result.verification.ok);
}

TEST(JavmmTest, NoLkmLoadedDegradesToVanilla) {
  LabConfig config = SmallLab(/*assisted=*/true, 9);
  config.load_lkm = false;
  MigrationLab lab(SmallDerby(), config);
  lab.Run(Duration::Seconds(10));
  const MigrationResult result = lab.Migrate();
  ASSERT_TRUE(result.verification.ok);
  EXPECT_EQ(result.pages_skipped_bitmap, 0);
}

// ---- Cache application (§6 extension). ----

class CacheLabTest : public ::testing::Test {
 protected:
  CacheLabTest()
      : memory_(256 * kMiB), kernel_(&memory_, &clock_) {
    kernel_.LoadLkm(LkmConfig{});
  }
  SimClock clock_;
  GuestPhysicalMemory memory_;
  GuestKernel kernel_;
};

TEST_F(CacheLabTest, CacheAppSkipsColdSuffix) {
  CacheAppConfig cache_config;
  cache_config.cache_bytes = 64 * kMiB;
  cache_config.purge_fraction = 0.5;
  CacheApplication cache(&kernel_, cache_config, Rng(1));
  clock_.Advance(Duration::Seconds(5));

  MigrationConfig mig;
  mig.application_assisted = true;
  MigrationEngine engine(&kernel_, mig);
  RangeLivenessSource retained(&kernel_, cache.pid());
  retained.AddRange(cache.retained_range());
  engine.AddRequiredPfnSource(&retained);

  const MigrationResult result = engine.Migrate();
  ASSERT_TRUE(result.verification.ok) << result.verification.detail;
  EXPECT_EQ(cache.purge_count(), 1);
  // The cold suffix (32 MiB) was skipped in the last iteration too.
  EXPECT_GT(result.verification.pages_skipped_garbage,
            PagesForBytes(24 * kMiB));
  EXPECT_GT(result.verification.required_pfns_checked, 0);
  EXPECT_EQ(result.verification.required_pfn_failures, 0);
  // App keeps serving after resume.
  const double ops = cache.ops_completed();
  clock_.Advance(Duration::Seconds(2));
  EXPECT_GT(cache.ops_completed(), ops);
}

TEST_F(CacheLabTest, JvmAndCacheCoexist) {
  WorkloadSpec spec = SmallDerby();
  spec.heap.young_max_bytes = 64 * kMiB;
  spec.heap.old_max_bytes = 48 * kMiB;
  spec.old_baseline_bytes = 16 * kMiB;
  spec.alloc_rate_bytes_per_sec = 40 * kMiB;
  JavaApplication jvm(&kernel_, spec, Rng(2));
  CacheAppConfig cache_config;
  cache_config.cache_bytes = 32 * kMiB;
  CacheApplication cache(&kernel_, cache_config, Rng(3));
  clock_.Advance(Duration::Seconds(10));

  MigrationConfig mig;
  mig.application_assisted = true;
  MigrationEngine engine(&kernel_, mig);
  JavaLivenessSource jvm_live(&kernel_, &jvm);
  RangeLivenessSource cache_live(&kernel_, cache.pid());
  cache_live.AddRange(cache.retained_range());
  engine.AddRequiredPfnSource(&jvm_live);
  engine.AddRequiredPfnSource(&cache_live);

  const MigrationResult result = engine.Migrate();
  ASSERT_TRUE(result.verification.ok) << result.verification.detail;
  // Both applications contributed skip-over areas.
  EXPECT_GT(result.verification.pages_skipped_garbage,
            PagesForBytes(cache_config.cache_bytes / 2));
  EXPECT_EQ(cache.purge_count(), 1);
  EXPECT_FALSE(jvm.held_at_safepoint());  // Released after resume.
}

// ---- Adaptive policy (§6). ----

TEST(PolicyTest, RecommendsAssistedForGarbageRichWorkload) {
  MigrationLab lab(SmallDerby(), SmallLab(true, 10));
  lab.Run(Duration::Seconds(30));
  const PolicyDecision decision =
      AdaptiveMigrationPolicy::Decide(lab.app().heap(), LinkConfig{});
  EXPECT_TRUE(decision.use_assisted) << decision.reason;
}

TEST(PolicyTest, RecommendsPlainForLongLivedWorkload) {
  WorkloadSpec spec = Workloads::Get("scimark");
  spec.old_baseline_bytes = 96 * kMiB;
  spec.heap.young_max_bytes = 128 * kMiB;
  spec.heap.old_max_bytes = 224 * kMiB;
  MigrationLab lab(spec, SmallLab(true, 11));
  lab.Run(Duration::Seconds(60));
  const PolicyDecision decision =
      AdaptiveMigrationPolicy::Decide(lab.app().heap(), LinkConfig{});
  EXPECT_FALSE(decision.use_assisted) << decision.reason;
}

TEST(PolicyTest, NoHistoryFallsBackToYoungSize) {
  GuestPhysicalMemory memory(256 * kMiB);
  AddressSpace space(&memory);
  HeapConfig config;
  config.young_max_bytes = 64 * kMiB;
  config.young_initial_bytes = 32 * kMiB;
  config.old_max_bytes = 64 * kMiB;
  GenerationalHeap heap(&space, config);
  const PolicyDecision decision = AdaptiveMigrationPolicy::Decide(heap, LinkConfig{});
  EXPECT_FALSE(decision.use_assisted);  // 32 MiB young < 256 MiB threshold.
}

}  // namespace
}  // namespace javmm
