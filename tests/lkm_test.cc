// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Protocol tests for the LKM: state machine, transfer-bitmap update policy,
// PFN cache, straggler timeout (Fig 4, §3.3.4, §6).

#include <gtest/gtest.h>

#include <optional>

#include "src/guest/guest_kernel.h"
#include "src/guest/lkm.h"
#include "src/mem/physical_memory.h"
#include "src/sim/clock.h"

namespace javmm {
namespace {

// A scriptable application on the netlink group.
class FakeApp : public NetlinkSubscriber {
 public:
  FakeApp(GuestKernel* kernel, std::string name)
      : kernel_(kernel), pid_(kernel->CreateProcess(std::move(name))) {
    kernel_->netlink().Subscribe(pid_, this);
  }
  ~FakeApp() override { kernel_->netlink().Unsubscribe(pid_); }

  // Commits `pages` pages and returns the region's VA range.
  VaRange CommitRegion(int64_t pages) {
    AddressSpace& space = kernel_->address_space(pid_);
    const VaRange r = space.ReserveVa(pages * kPageSize);
    EXPECT_TRUE(space.CommitRange(r.begin, r.bytes()));
    return r;
  }

  void OnNetlinkMessage(const NetlinkMessage& msg) override {
    last_message_ = msg.type;
    ++messages_received_;
    Lkm* lkm = kernel_->lkm();
    switch (msg.type) {
      case NetlinkMessageType::kQuerySkipOverAreas:
        if (respond_to_query_) {
          lkm->ReportSkipOverAreas(pid_, areas_);
        }
        return;
      case NetlinkMessageType::kPrepareForSuspension:
        if (respond_to_prepare_) {
          lkm->NotifySuspensionReady(pid_, ready_info_);
        }
        return;
      case NetlinkMessageType::kVmResumed:
        ++resumed_notices_;
        return;
    }
  }

  AppId pid() const { return pid_; }
  Pfn PfnAt(VirtAddr va) { return kernel_->address_space(pid_).page_table().Lookup(VpnOf(va)); }

  GuestKernel* kernel_;
  AppId pid_;
  std::vector<VaRange> areas_;
  SuspensionReadyInfo ready_info_;
  bool respond_to_query_ = true;
  bool respond_to_prepare_ = true;
  std::optional<NetlinkMessageType> last_message_;
  int messages_received_ = 0;
  int resumed_notices_ = 0;
};

class LkmTest : public ::testing::Test {
 protected:
  LkmTest() : memory_(256 * kPageSize), kernel_(&memory_, &clock_) {
    lkm_ = &kernel_.LoadLkm(LkmConfig{});
    kernel_.event_channel().BindDaemonHandler([this](LkmToDaemon msg) {
      if (msg == LkmToDaemon::kSuspensionReady) {
        ++suspension_ready_count_;
      }
    });
  }

  int64_t ClearedBits() const {
    return lkm_->transfer_bitmap().size() - lkm_->transfer_bitmap().Count();
  }

  SimClock clock_;
  GuestPhysicalMemory memory_;
  GuestKernel kernel_;
  Lkm* lkm_;
  int suspension_ready_count_ = 0;
};

TEST_F(LkmTest, InitialState) {
  EXPECT_EQ(lkm_->state(), Lkm::State::kInitialized);
  // Transfer bitmap initialised all-set: every dirty page migrates by default.
  EXPECT_EQ(lkm_->transfer_bitmap().Count(), memory_.frame_count());
}

TEST_F(LkmTest, FirstUpdateClearsSkipOverBits) {
  FakeApp app(&kernel_, "app");
  const VaRange region = app.CommitRegion(16);
  app.areas_ = {region};
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  EXPECT_EQ(lkm_->state(), Lkm::State::kMigrationStarted);
  EXPECT_EQ(ClearedBits(), 16);
  EXPECT_FALSE(lkm_->transfer_bitmap().Test(app.PfnAt(region.begin)));
  // PFN cache sized at 4 bytes per cached page (§3.3.4).
  EXPECT_EQ(lkm_->pfn_cache_bytes(), 16 * 4);
}

TEST_F(LkmTest, UnalignedAreaOnlyClearsInteriorPages) {
  FakeApp app(&kernel_, "app");
  const VaRange region = app.CommitRegion(4);
  // Report a range missing the first and last 100 bytes: boundary pages are
  // not skippable in their entirety, so only the 2 interior pages clear.
  app.areas_ = {VaRange{region.begin + 100, region.end - 100}};
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  EXPECT_EQ(ClearedBits(), 2);
}

TEST_F(LkmTest, UncommittedPagesInAreaAreIgnored) {
  FakeApp app(&kernel_, "app");
  AddressSpace& space = kernel_.address_space(app.pid());
  const VaRange reserved = space.ReserveVa(8 * kPageSize);
  ASSERT_TRUE(space.CommitRange(reserved.begin, 4 * kPageSize));  // Half mapped.
  app.areas_ = {reserved};
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  EXPECT_EQ(ClearedBits(), 4);  // Walk found 4 present PTEs.
}

TEST_F(LkmTest, ShrinkSetsBitsImmediatelyViaPfnCache) {
  FakeApp app(&kernel_, "app");
  const VaRange region = app.CommitRegion(16);
  app.areas_ = {region};
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  ASSERT_EQ(ClearedBits(), 16);

  // The last 4 pages leave the area; the app frees them *before* notifying,
  // so the PFNs are gone from the page tables -- the cache must resolve them.
  const VaRange left{region.end - 4 * static_cast<uint64_t>(kPageSize), region.end};
  const Pfn leaving_pfn = app.PfnAt(left.begin);
  kernel_.address_space(app.pid()).DecommitRange(left.begin, left.bytes());
  lkm_->NotifyAreaShrunk(app.pid(), left);

  EXPECT_EQ(ClearedBits(), 12);
  EXPECT_TRUE(lkm_->transfer_bitmap().Test(leaving_pfn));
  EXPECT_EQ(lkm_->pfn_cache_bytes(), 12 * 4);  // Cache entries dropped.
}

TEST_F(LkmTest, ExpansionDeferredToFinalUpdate) {
  FakeApp app(&kernel_, "app");
  const VaRange initial = app.CommitRegion(8);
  app.areas_ = {initial};
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  ASSERT_EQ(ClearedBits(), 8);

  // Area expands: app commits 8 more pages; per §3.3.4 it does NOT notify.
  AddressSpace& space = kernel_.address_space(app.pid());
  const VaRange extra = space.ReserveVa(8 * kPageSize);
  ASSERT_TRUE(space.CommitRange(extra.begin, extra.bytes()));
  EXPECT_EQ(ClearedBits(), 8);  // Still only the original pages.

  // Final update: the fresh report includes the expansion.
  app.ready_info_.skip_over_areas = {initial, extra};
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kEnteringLastIter);
  EXPECT_EQ(lkm_->state(), Lkm::State::kSuspensionReady);
  EXPECT_EQ(ClearedBits(), 16);
  EXPECT_EQ(suspension_ready_count_, 1);
}

TEST_F(LkmTest, MustTransferRangesGetBitsSetInFinalUpdate) {
  FakeApp app(&kernel_, "app");
  const VaRange region = app.CommitRegion(16);
  app.areas_ = {region};
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  ASSERT_EQ(ClearedBits(), 16);

  // JAVMM's occupied From space: 3 pages inside the skip-over area that must
  // be transferred in the last iteration.
  const VaRange from{region.begin + 2 * static_cast<uint64_t>(kPageSize),
                     region.begin + 5 * static_cast<uint64_t>(kPageSize)};
  app.ready_info_.skip_over_areas = {region};
  app.ready_info_.must_transfer = {from};
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kEnteringLastIter);
  EXPECT_EQ(ClearedBits(), 13);
  EXPECT_TRUE(lkm_->transfer_bitmap().Test(app.PfnAt(from.begin)));
}

TEST_F(LkmTest, MustTransferUsesOutwardAlignment) {
  FakeApp app(&kernel_, "app");
  const VaRange region = app.CommitRegion(8);
  app.areas_ = {region};
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  // A must-transfer range covering half of page 1 and half of page 2 must
  // re-enable BOTH pages (live data may touch either).
  const VaRange partial{region.begin + static_cast<uint64_t>(kPageSize) + 2000,
                        region.begin + 2 * static_cast<uint64_t>(kPageSize) + 2000};
  app.ready_info_.skip_over_areas = {region};
  app.ready_info_.must_transfer = {partial};
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kEnteringLastIter);
  EXPECT_EQ(ClearedBits(), 6);
}

TEST_F(LkmTest, StragglerTimeoutRevokesAreasAndProceeds) {
  FakeApp good(&kernel_, "good");
  FakeApp bad(&kernel_, "bad");
  const VaRange good_region = good.CommitRegion(8);
  const VaRange bad_region = bad.CommitRegion(8);
  good.areas_ = {good_region};
  bad.areas_ = {bad_region};
  bad.respond_to_prepare_ = false;  // Non-cooperative at suspension time.
  good.ready_info_.skip_over_areas = {good_region};

  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  ASSERT_EQ(ClearedBits(), 16);
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kEnteringLastIter);
  // Good responded; bad is pending, so the LKM waits.
  EXPECT_EQ(lkm_->state(), Lkm::State::kEnteringLastIter);
  EXPECT_EQ(suspension_ready_count_, 0);

  // Let the straggler timeout fire.
  clock_.Advance(LkmConfig{}.straggler_timeout + Duration::Millis(1));
  EXPECT_EQ(lkm_->state(), Lkm::State::kSuspensionReady);
  EXPECT_EQ(suspension_ready_count_, 1);
  EXPECT_EQ(lkm_->stragglers_timed_out(), 1);
  // The straggler's pages were revoked (bits set again); the good app's
  // remain cleared.
  EXPECT_TRUE(lkm_->transfer_bitmap().Test(bad.PfnAt(bad_region.begin)));
  EXPECT_FALSE(lkm_->transfer_bitmap().Test(good.PfnAt(good_region.begin)));
  EXPECT_EQ(ClearedBits(), 8);
}

TEST_F(LkmTest, ResumeResetsEverything) {
  FakeApp app(&kernel_, "app");
  const VaRange region = app.CommitRegion(8);
  app.areas_ = {region};
  app.ready_info_.skip_over_areas = {region};
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kEnteringLastIter);
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kVmResumed);
  EXPECT_EQ(lkm_->state(), Lkm::State::kInitialized);
  EXPECT_EQ(lkm_->transfer_bitmap().Count(), memory_.frame_count());
  EXPECT_EQ(lkm_->pfn_cache_bytes(), 0);
  EXPECT_EQ(app.resumed_notices_, 1);
}

TEST_F(LkmTest, SupportsBackToBackMigrations) {
  FakeApp app(&kernel_, "app");
  const VaRange region = app.CommitRegion(8);
  app.areas_ = {region};
  app.ready_info_.skip_over_areas = {region};
  for (int round = 0; round < 3; ++round) {
    kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
    EXPECT_EQ(ClearedBits(), 8);
    kernel_.event_channel().NotifyGuest(DaemonToLkm::kEnteringLastIter);
    EXPECT_EQ(lkm_->state(), Lkm::State::kSuspensionReady);
    kernel_.event_channel().NotifyGuest(DaemonToLkm::kVmResumed);
    EXPECT_EQ(lkm_->state(), Lkm::State::kInitialized);
  }
  EXPECT_EQ(suspension_ready_count_, 3);
}

TEST_F(LkmTest, AbortReleasesAndResets) {
  FakeApp app(&kernel_, "app");
  const VaRange region = app.CommitRegion(8);
  app.areas_ = {region};
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  ASSERT_EQ(ClearedBits(), 8);
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationAborted);
  EXPECT_EQ(lkm_->state(), Lkm::State::kInitialized);
  EXPECT_EQ(lkm_->transfer_bitmap().Count(), memory_.frame_count());
  EXPECT_EQ(app.resumed_notices_, 1);  // Release notification delivered.
}

TEST_F(LkmTest, OutOfStateMessagesCountAsViolations) {
  FakeApp app(&kernel_, "app");
  const VaRange region = app.CommitRegion(4);
  // Reports before migration started are ignored.
  lkm_->ReportSkipOverAreas(app.pid(), {region});
  EXPECT_EQ(ClearedBits(), 0);
  lkm_->NotifyAreaShrunk(app.pid(), region);
  lkm_->NotifySuspensionReady(app.pid(), {});
  EXPECT_EQ(lkm_->protocol_violations(), 3);
  EXPECT_EQ(lkm_->state(), Lkm::State::kInitialized);
}

TEST_F(LkmTest, NoSubscribersProceedsImmediately) {
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kEnteringLastIter);
  EXPECT_EQ(lkm_->state(), Lkm::State::kSuspensionReady);
  EXPECT_EQ(suspension_ready_count_, 1);
  EXPECT_EQ(lkm_->transfer_bitmap().Count(), memory_.frame_count());
}

TEST_F(LkmTest, MultipleAppsContributeIndependentAreas) {
  FakeApp a(&kernel_, "a");
  FakeApp b(&kernel_, "b");
  const VaRange ra = a.CommitRegion(4);
  const VaRange rb = b.CommitRegion(6);
  a.areas_ = {ra};
  b.areas_ = {rb};
  a.ready_info_.skip_over_areas = {ra};
  b.ready_info_.skip_over_areas = {rb};
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  EXPECT_EQ(ClearedBits(), 10);
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kEnteringLastIter);
  EXPECT_EQ(lkm_->state(), Lkm::State::kSuspensionReady);
  EXPECT_EQ(ClearedBits(), 10);
}

TEST_F(LkmTest, FinalUpdateDurationIsSmall) {
  FakeApp app(&kernel_, "app");
  const VaRange region = app.CommitRegion(64);
  app.areas_ = {region};
  app.ready_info_.skip_over_areas = {region};
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kMigrationStarted);
  kernel_.event_channel().NotifyGuest(DaemonToLkm::kEnteringLastIter);
  // The paper measures < 300 us; with no expansion/shrink it is near zero.
  EXPECT_LT(lkm_->last_final_update_duration().nanos(), Duration::Micros(300).nanos());
}

}  // namespace
}  // namespace javmm
