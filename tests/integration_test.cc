// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Cross-module property sweep: every SPECjvm2008 proxy workload, both
// engines, multiple seeds -- migration must always verify, and the §5.3
// category behaviours must hold.

#include <gtest/gtest.h>

#include "src/core/migration_lab.h"

namespace javmm {
namespace {

// Full-size (paper-scale) configuration: 2 GiB VM, gigabit link.
LabConfig PaperLab(bool assisted, uint64_t seed) {
  LabConfig config;
  config.seed = seed;
  config.migration.application_assisted = assisted;
  return config;
}

struct SweepCase {
  const char* workload;
  bool assisted;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  return std::string(info.param.workload) + (info.param.assisted ? "_javmm" : "_xen") + "_s" +
         std::to_string(info.param.seed);
}

class MigrationSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MigrationSweepTest, MigratesCorrectly) {
  const SweepCase& param = GetParam();
  MigrationLab lab(Workloads::Get(param.workload), PaperLab(param.assisted, param.seed));
  lab.Run(Duration::Seconds(60));
  const MigrationResult result = lab.Migrate();
  EXPECT_TRUE(result.completed);
  ASSERT_TRUE(result.verification.ok)
      << param.workload << ": " << result.verification.detail;
  EXPECT_GT(result.verification.required_pfns_checked, 0);
  // The guest stays functional at the destination.
  const double ops = lab.app().ops_completed();
  lab.Run(Duration::Seconds(15));
  EXPECT_GT(lab.app().ops_completed(), ops);
  // The LKM is back in its initial state, ready for another migration.
  EXPECT_EQ(lab.guest().lkm()->state(), Lkm::State::kInitialized);
  EXPECT_EQ(lab.guest().lkm()->protocol_violations(), 0);
}

std::vector<SweepCase> AllCases() {
  std::vector<SweepCase> cases;
  for (const WorkloadSpec& spec : Workloads::All()) {
    for (const bool assisted : {false, true}) {
      cases.push_back(SweepCase{spec.name == "derby"      ? "derby"
                                : spec.name == "compiler" ? "compiler"
                                : spec.name == "xml"      ? "xml"
                                : spec.name == "sunflow"  ? "sunflow"
                                : spec.name == "serial"   ? "serial"
                                : spec.name == "crypto"   ? "crypto"
                                : spec.name == "scimark"  ? "scimark"
                                : spec.name == "mpeg"     ? "mpeg"
                                                          : "compress",
                                assisted, 1});
    }
  }
  // A few extra seeds on the category representatives.
  for (const uint64_t seed : {2u, 3u}) {
    cases.push_back(SweepCase{"derby", true, seed});
    cases.push_back(SweepCase{"scimark", true, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, MigrationSweepTest, ::testing::ValuesIn(AllCases()),
                         CaseName);

// ---- §5.3 category behaviours at paper scale. ----

TEST(CategoryBehaviorTest, Category1YoungReachesCap) {
  for (const char* name : {"derby", "xml", "compiler", "sunflow"}) {
    MigrationLab lab(Workloads::Get(name), PaperLab(false, 1));
    lab.Run(Duration::Seconds(90));
    EXPECT_EQ(lab.app().heap().young_committed_bytes(),
              lab.spec().heap.young_max_bytes)
        << name;
  }
}

TEST(CategoryBehaviorTest, Category2YoungBelowCap) {
  for (const char* name : {"crypto", "serial", "mpeg", "compress"}) {
    MigrationLab lab(Workloads::Get(name), PaperLab(false, 1));
    lab.Run(Duration::Seconds(90));
    const int64_t young = lab.app().heap().young_committed_bytes();
    EXPECT_LT(young, lab.spec().heap.young_max_bytes) << name;
    EXPECT_GT(young, 128 * kMiB) << name;
  }
}

TEST(CategoryBehaviorTest, Category3SmallYoungLargeOld) {
  MigrationLab lab(Workloads::Get("scimark"), PaperLab(false, 1));
  lab.Run(Duration::Seconds(90));
  // Table 2: scimark ~128 MiB young, ~486 MiB old.
  EXPECT_LT(lab.app().heap().young_committed_bytes(), 256 * kMiB);
  EXPECT_GT(lab.app().heap().old_used_bytes(), 320 * kMiB);
}

TEST(CategoryBehaviorTest, GarbageFractionsMatchFig5b) {
  // >97% of used young memory is garbage per minor GC for all workloads
  // except scimark (Fig 5(b)).
  for (const char* name : {"derby", "compiler", "xml", "crypto"}) {
    MigrationLab lab(Workloads::Get(name), PaperLab(false, 2));
    lab.Run(Duration::Seconds(60));
    EXPECT_GT(lab.app().heap().gc_log().MeanMinorGarbageFraction(), 0.9) << name;
  }
  MigrationLab scimark(Workloads::Get("scimark"), PaperLab(false, 2));
  scimark.Run(Duration::Seconds(60));
  EXPECT_LT(scimark.app().heap().gc_log().MeanMinorGarbageFraction(), 0.7);
}

TEST(CategoryBehaviorTest, DerbyGcDurationNearPaper) {
  // Fig 5(c)/§5.3: derby's minor GC over a full 1 GiB young ~0.9 s.
  MigrationLab lab(Workloads::Get("derby"), PaperLab(false, 3));
  lab.Run(Duration::Seconds(90));
  const Duration mean = lab.app().heap().gc_log().MeanMinorDuration();
  EXPECT_GT(mean.ToSecondsF(), 0.5);
  EXPECT_LT(mean.ToSecondsF(), 1.4);
}

// ---- Throughput analyser behaviour (Fig 11). ----

TEST(ThroughputTest, DowntimeVisibleFromOutside) {
  MigrationLab lab(Workloads::Get("derby"), PaperLab(false, 4));
  lab.Run(Duration::Seconds(60));
  const TimePoint migration_start = lab.clock().now();
  const MigrationResult result = lab.Migrate();
  lab.Run(Duration::Seconds(20));
  const Duration observed =
      lab.analyzer().ObservedDowntime(migration_start, lab.clock().now());
  // The externally-observed stall brackets the engine-reported downtime
  // (sampling granularity is 1 s).
  EXPECT_GE(observed.nanos() + Duration::Seconds(1).nanos(), result.downtime.Total().nanos());
  EXPECT_LE(observed.nanos(),
            result.downtime.Total().nanos() + 3 * Duration::Seconds(1).nanos());
}

TEST(ThroughputTest, NoNoticeableDegradationWithJavmm) {
  // §5.3: "the workload experiences no noticeable throughput degradation
  // during migration, except the short pause".
  MigrationLab lab(Workloads::Get("crypto"), PaperLab(true, 5));
  lab.Run(Duration::Seconds(60));
  const TimePoint t0 = lab.clock().now();
  lab.Migrate();
  lab.Run(Duration::Seconds(30));
  const auto& series = lab.analyzer().series();
  const double before = series.MeanInWindow(t0 - Duration::Seconds(30), t0);
  const double after = series.MeanInWindow(lab.clock().now() - Duration::Seconds(20),
                                           lab.clock().now());
  EXPECT_NEAR(after, before, before * 0.1);
}

}  // namespace
}  // namespace javmm
