// Copyright (c) 2026 The JAVMM Reproduction Authors.
// `migrate_cli` -- the management-command analogue of the paper's "Xen
// management command to invoke application-assisted live migration" (§3.3):
// run any workload/engine/link combination from the command line and get the
// three headline metrics, the downtime breakdown, optional per-iteration CSV,
// and multi-seed summaries with 90% confidence intervals.
//
// Examples:
//   migrate_cli --workload=derby --engine=javmm
//   migrate_cli --workload=xml --engine=xen --young-mib=1536 --repeat=3
//   migrate_cli --workload=crypto --engine=auto --bandwidth-gbps=2.5 --csv
//   migrate_cli --workload=derby --engine=postcopy
//   migrate_cli --workload=crypto --engine=javmm --faults="bw:0s-60s@0.1;loss:0.05"
//   migrate_cli --list

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "src/core/migration_lab.h"
#include "src/core/policy.h"
#include "src/faults/faults.h"
#include "src/migration/baselines.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

namespace {

using namespace javmm;  // NOLINT

struct CliOptions {
  std::string workload = "derby";
  std::string engine = "javmm";  // xen | javmm | auto | postcopy | stopcopy
  uint64_t seed = 1;
  int repeat = 1;
  double bandwidth_gbps = 1.0;
  int64_t vm_mib = 2048;
  int64_t young_mib = 0;  // 0 = workload default.
  double warmup_s = 120;
  bool compress = false;
  bool csv = false;
  bool list = false;
  int channels = 1;       // Migration data-plane sub-links (DESIGN.md §11).
  std::string trace_out;  // JSON-lines trace of the last run ("" = off).
  std::string faults;     // FaultPlan spec for the migration link ("" = healthy).
  std::string hotness;    // HotnessConfig spec, pre-copy only ("" = off).
  HotnessConfig hotness_config;  // Parsed + validated in main().
};

void PrintUsage() {
  std::printf(
      "usage: migrate_cli [options]\n"
      "  --workload=NAME       one of the SPECjvm2008 proxies (--list)\n"
      "  --engine=MODE         xen | javmm | auto | postcopy | stopcopy\n"
      "  --seed=N              PRNG seed (default 1)\n"
      "  --repeat=N            runs with seeds seed..seed+N-1, CI summary\n"
      "  --bandwidth-gbps=G    migration link speed (default 1.0)\n"
      "  --vm-mib=M            guest memory (default 2048)\n"
      "  --young-mib=M         override the young-generation cap (-Xmn)\n"
      "  --warmup-s=S          workload warmup before migrating (default 120)\n"
      "  --compress            enable the compression extension (all engines\n"
      "                        except postcopy, which ships pages raw)\n"
      "  --channels=N          stripe the migration data plane over N\n"
      "                        fault-isolated sub-links (default 1)\n"
      "  --faults=SPEC         deterministic link-fault plan, e.g.\n"
      "                        \"bw:2s-30s@0.1;lat:0s-5s+10ms;out:4s-5s;loss:0.05\";\n"
      "                        prefix a clause with chK: to pin it to sub-link K,\n"
      "                        e.g. \"ch1:out:7s-8s;loss:0.05\" (needs --channels>K)\n"
      "  --hotness=SPEC        hotness-scored coldest-first ordering with\n"
      "                        hot-page deferral (pre-copy engines only):\n"
      "                        \"on\" for defaults or e.g.\n"
      "                        \"rate:2,score:8,decay:1,budget:500ms\"\n"
      "  --csv                 print per-iteration records as CSV\n"
      "  --trace-out=FILE      write the last run's migration trace as JSON lines\n"
      "  --list                list workloads and exit\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--workload", &value)) {
      options->workload = value;
    } else if (ParseFlag(argv[i], "--engine", &value)) {
      options->engine = value;
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      options->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--repeat", &value)) {
      options->repeat = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--bandwidth-gbps", &value)) {
      options->bandwidth_gbps = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--vm-mib", &value)) {
      options->vm_mib = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "--young-mib", &value)) {
      options->young_mib = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "--warmup-s", &value)) {
      options->warmup_s = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "--trace-out", &value)) {
      options->trace_out = value;
    } else if (ParseFlag(argv[i], "--faults", &value)) {
      options->faults = value;
    } else if (ParseFlag(argv[i], "--channels", &value)) {
      options->channels = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--hotness", &value)) {
      options->hotness = value;
    } else if (std::strcmp(argv[i], "--compress") == 0) {
      options->compress = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      options->csv = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      options->list = true;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      PrintUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n\n", argv[i]);
      return false;
    }
  }
  return true;
}

// Applies --channels and parses --faults into config->migration.{faults,
// channel_faults}. Returns false (after printing the parse error) on a
// malformed spec -- including a chK: clause naming a channel >= --channels;
// an empty spec only sets the channel count.
bool ApplyFaults(const CliOptions& options, LabConfig* config) {
  config->migration.channels = options.channels;
  std::string error;
  if (!FaultPlan::ParseMulti(options.faults, options.channels, &config->migration.faults,
                             &config->migration.channel_faults, &error)) {
    std::fprintf(stderr, "bad --faults spec '%s': %s\n", options.faults.c_str(), error.c_str());
    return false;
  }
  return true;
}

// Per-channel traffic rows, shown only when the data plane was striped.
void AddChannelRows(Table* table, const MigrationResult& last) {
  if (last.channels <= 1) {
    return;
  }
  for (int c = 0; c < last.channels; ++c) {
    const size_t i = static_cast<size_t>(c);
    char label[32];
    std::snprintf(label, sizeof(label), "channel %d", c);
    char cell[96];
    std::snprintf(cell, sizeof(cell), "%s wire, %lld pages, %s retry",
                  FormatBytes(last.channel_wire_bytes[i]).c_str(),
                  static_cast<long long>(last.channel_pages_sent[i]),
                  FormatBytes(last.channel_retry_bytes[i]).c_str());
    table->Row().Cell(label).Cell(cell);
  }
}

// Writes `trace` to options.trace_out as JSON lines; returns false on I/O
// failure. No-op (true) when the flag was not given.
bool MaybeExportTrace(const CliOptions& options, const TraceRecorder& trace) {
  if (options.trace_out.empty()) {
    return true;
  }
  std::ofstream out(options.trace_out);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", options.trace_out.c_str());
    return false;
  }
  trace.ExportJsonLines(out);
  return static_cast<bool>(out);
}

void WarnIfAuditFailed(const MigrationResult& result) {
  if (result.trace_audit.ran && !result.trace_audit.ok) {
    std::fprintf(stderr, "TRACE AUDIT FAILED: %s\n", result.trace_audit.ToString().c_str());
  }
}

void PrintCsv(const MigrationResult& result) {
  std::printf("iter,duration_s,pages_sent,wire_bytes,skipped_dirty,skipped_bitmap,"
              "dirty_after\n");
  for (const IterationRecord& it : result.iterations) {
    std::printf("%d,%.4f,%lld,%lld,%lld,%lld,%lld\n", it.index, it.duration.ToSecondsF(),
                static_cast<long long>(it.pages_sent), static_cast<long long>(it.wire_bytes),
                static_cast<long long>(it.pages_skipped_dirty),
                static_cast<long long>(it.pages_skipped_bitmap),
                static_cast<long long>(it.dirty_pages_after));
  }
}

int RunPrecopyStyle(const CliOptions& options) {
  Summary time_s;
  Summary traffic_gib;
  Summary downtime_s;
  MigrationResult last;
  std::string engine_used = options.engine;
  for (int run = 0; run < options.repeat; ++run) {
    WorkloadSpec spec = Workloads::Get(options.workload);
    if (options.young_mib > 0) {
      spec = Workloads::WithYoungCap(spec, options.young_mib * kMiB);
    }
    LabConfig config;
    config.vm_bytes = options.vm_mib * kMiB;
    config.seed = options.seed + static_cast<uint64_t>(run);
    config.migration.link.bandwidth_bps = options.bandwidth_gbps * 1e9;
    config.migration.compress_pages = options.compress;
    if (!ApplyFaults(options, &config)) {
      return 2;
    }
    bool assisted = options.engine == "javmm";
    MigrationLab lab(spec, config);
    lab.Run(Duration::SecondsF(options.warmup_s));
    if (options.engine == "auto") {
      const PolicyDecision decision = AdaptiveMigrationPolicy::Decide(
          lab.app().heap(), config.migration.link);
      assisted = decision.use_assisted;
      engine_used = assisted ? "javmm (auto)" : "xen (auto)";
      std::printf("policy: %s -> %s\n", decision.reason.c_str(),
                  assisted ? "JAVMM" : "plain pre-copy");
    }
    // Take the lab's copy of the migration config: the lab forks a dedicated
    // fault_seed off the run seed, so the Bernoulli control-loss draws are
    // reproducible per --seed without perturbing the OS/app streams.
    MigrationConfig mig = lab.config().migration;
    mig.application_assisted = assisted;
    mig.hotness = options.hotness_config;
    MigrationEngine engine(&lab.guest(), mig);
    MigrationResult result = engine.Migrate();
    // Enrich the downtime breakdown with the JVM-side components (as
    // MigrationLab::Migrate does when it drives the engine itself).
    if (result.assisted && !result.fell_back_unassisted) {
      const GcLog& gc_log = lab.app().heap().gc_log();
      for (auto it = gc_log.minor.rbegin(); it != gc_log.minor.rend(); ++it) {
        if (it->enforced && it->at >= result.started_at) {
          result.downtime.enforced_gc = it->duration + it->full_gc_penalty;
          break;
        }
      }
      result.downtime.safepoint_wait = lab.app().last_safepoint_wait();
    }
    lab.Run(Duration::Seconds(20));
    if (!result.verification.ok) {
      std::fprintf(stderr, "VERIFICATION FAILED: %s\n", result.verification.detail.c_str());
      return 1;
    }
    WarnIfAuditFailed(result);
    if (run + 1 == options.repeat && !MaybeExportTrace(options, engine.trace())) {
      return 1;
    }
    time_s.Add(result.total_time.ToSecondsF());
    traffic_gib.Add(static_cast<double>(result.total_wire_bytes) / static_cast<double>(kGiB));
    downtime_s.Add(result.downtime.Total().ToSecondsF());
    last = result;
  }

  Table table({"metric", options.repeat > 1 ? "mean ± 90% CI" : "value"});
  table.Row().Cell("engine").Cell(engine_used);
  table.Row().Cell("completion time").Cell(time_s.ToString(1.0, " s"));
  table.Row().Cell("network traffic").Cell(traffic_gib.ToString(1.0, " GiB"));
  table.Row().Cell("downtime").Cell(downtime_s.ToString(1.0, " s"));
  table.Row().Cell("iterations").Cell(static_cast<int64_t>(last.iteration_count()));
  if (!options.faults.empty()) {
    char faults[96];
    std::snprintf(faults, sizeof(faults), "%lld ctl-loss, %lld burst, %lld round-timeout",
                  static_cast<long long>(last.control_losses),
                  static_cast<long long>(last.burst_faults),
                  static_cast<long long>(last.round_timeouts));
    table.Row().Cell("faults survived").Cell(faults);
    table.Row().Cell("retry traffic").Cell(FormatBytes(last.retry_wire_bytes));
    table.Row().Cell("backoff").Cell(last.backoff_time.ToString());
    table.Row().Cell("degraded").Cell(
        last.degraded ? DegradeReasonName(last.degrade_reason) : "no");
  }
  if (last.hotness) {
    table.Row().Cell("hot pages deferred").Cell(last.pages_deferred_hot);
    table.Row().Cell("re-sends avoided").Cell(last.resend_pages_avoided);
  }
  AddChannelRows(&table, last);
  table.Row().Cell("verified").Cell("yes");
  table.Print(std::cout);
  if (last.assisted) {
    std::printf("downtime breakdown: gc %s, final update %s, last iter %s, resume %s\n",
                last.downtime.enforced_gc.ToString().c_str(),
                last.downtime.final_bitmap_update.ToString().c_str(),
                last.downtime.last_iter_transfer.ToString().c_str(),
                last.downtime.resumption.ToString().c_str());
  }
  if (options.csv) {
    PrintCsv(last);
  }
  return 0;
}

// Fault-recovery rows shared by every engine table; `stream_fallbacks` < 0
// hides the post-copy-only row.
void AddFaultRows(Table* table, const MigrationResult& last, int64_t stream_fallbacks) {
  char faults[96];
  std::snprintf(faults, sizeof(faults), "%lld ctl-loss, %lld burst",
                static_cast<long long>(last.control_losses),
                static_cast<long long>(last.burst_faults));
  table->Row().Cell("faults survived").Cell(faults);
  table->Row().Cell("retry traffic").Cell(FormatBytes(last.retry_wire_bytes));
  table->Row().Cell("backoff").Cell(last.backoff_time.ToString());
  if (stream_fallbacks >= 0) {
    table->Row().Cell("stream fallbacks").Cell(stream_fallbacks);
  }
  table->Row().Cell("degraded").Cell(
      last.degraded ? DegradeReasonName(last.degrade_reason) : "no");
}

int RunBaseline(const CliOptions& options) {
  const bool stopcopy = options.engine == "stopcopy";
  if (!stopcopy && options.compress) {
    std::fprintf(stderr,
                 "--compress is not implemented for post-copy (pages ship raw over the "
                 "demand/pre-paging streams); drop the flag or use --engine=stopcopy\n");
    return 2;
  }
  Summary time_s;
  Summary traffic_gib;
  Summary downtime_s;
  Summary dwindow_s;
  Summary stall_s;
  MigrationResult last;
  PostcopyResult last_pc;
  for (int run = 0; run < options.repeat; ++run) {
    WorkloadSpec spec = Workloads::Get(options.workload);
    if (options.young_mib > 0) {
      spec = Workloads::WithYoungCap(spec, options.young_mib * kMiB);
    }
    LabConfig config;
    config.vm_bytes = options.vm_mib * kMiB;
    config.seed = options.seed + static_cast<uint64_t>(run);
    config.migration.link.bandwidth_bps = options.bandwidth_gbps * 1e9;
    config.migration.compress_pages = options.compress;
    if (!ApplyFaults(options, &config)) {
      return 2;
    }
    MigrationLab lab(spec, config);
    lab.Run(Duration::SecondsF(options.warmup_s));
    // Take the lab's copy of the migration config: the lab forks a dedicated
    // fault_seed off the run seed, so the fault process is reproducible per
    // --seed without perturbing the OS/app streams.
    if (stopcopy) {
      StopAndCopyEngine engine(&lab.guest(), lab.config().migration);
      const MigrationResult result = engine.Migrate();
      WarnIfAuditFailed(result);
      if (run + 1 == options.repeat && !MaybeExportTrace(options, engine.trace())) {
        return 1;
      }
      if (!result.verification.ok) {
        std::fprintf(stderr, "VERIFICATION FAILED\n");
        return 1;
      }
      time_s.Add(result.total_time.ToSecondsF());
      traffic_gib.Add(static_cast<double>(result.total_wire_bytes) / static_cast<double>(kGiB));
      downtime_s.Add(result.downtime.Total().ToSecondsF());
      last = result;
    } else {
      PostcopyEngine::Config pc;
      pc.base = lab.config().migration;
      PostcopyEngine engine(&lab.guest(), pc);
      const PostcopyResult result = engine.Migrate();
      WarnIfAuditFailed(result.common);
      if (run + 1 == options.repeat && !MaybeExportTrace(options, engine.trace())) {
        return 1;
      }
      time_s.Add(result.common.total_time.ToSecondsF());
      traffic_gib.Add(static_cast<double>(result.common.total_wire_bytes) /
                      static_cast<double>(kGiB));
      downtime_s.Add(result.common.downtime.Total().ToSecondsF());
      dwindow_s.Add(result.degradation_window.ToSecondsF());
      stall_s.Add(result.fault_stall.ToSecondsF());
      last = result.common;
      last_pc = result;
    }
  }

  Table table({"metric", options.repeat > 1 ? "mean ± 90% CI" : "value"});
  table.Row().Cell("engine").Cell(stopcopy ? "stop-and-copy" : "post-copy");
  table.Row().Cell("completion time").Cell(time_s.ToString(1.0, " s"));
  table.Row().Cell("network traffic").Cell(traffic_gib.ToString(1.0, " GiB"));
  table.Row().Cell("downtime").Cell(downtime_s.ToString(1.0, " s"));
  if (!stopcopy) {
    table.Row().Cell("degradation window").Cell(dwindow_s.ToString(1.0, " s"));
    table.Row().Cell("demand faults").Cell(last_pc.demand_faults);
    table.Row().Cell("fault stall").Cell(stall_s.ToString(1.0, " s"));
  }
  if (!options.faults.empty()) {
    AddFaultRows(&table, last, stopcopy ? int64_t{-1} : last_pc.stream_fallback_fetches);
  }
  AddChannelRows(&table, last);
  table.Row().Cell("verified").Cell("yes");
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }
  if (options.list) {
    Table table({"workload", "category", "description"});
    for (const WorkloadSpec& spec : Workloads::All()) {
      table.Row()
          .Cell(spec.name)
          .Cell(static_cast<int64_t>(spec.category))
          .Cell(spec.description);
    }
    table.Print(std::cout);
    return 0;
  }
  if (options.repeat < 1 ||
      (options.engine != "xen" && options.engine != "javmm" && options.engine != "auto" &&
       options.engine != "postcopy" && options.engine != "stopcopy")) {
    PrintUsage();
    return 2;
  }
  if (options.channels <= 0) {
    std::fprintf(stderr, "--channels must be >= 1, got %d\n", options.channels);
    return 2;
  }
  {
    std::string error;
    if (!HotnessConfig::Parse(options.hotness, &options.hotness_config, &error)) {
      std::fprintf(stderr, "bad --hotness spec '%s': %s\n", options.hotness.c_str(),
                   error.c_str());
      return 2;
    }
    if (options.hotness_config.enabled &&
        (options.engine == "postcopy" || options.engine == "stopcopy")) {
      std::fprintf(stderr,
                   "--hotness orders pre-copy rounds; --engine=%s has none. Drop the flag "
                   "or use a pre-copy engine (xen, javmm, auto)\n",
                   options.engine.c_str());
      return 2;
    }
  }
  if (options.engine == "postcopy" || options.engine == "stopcopy") {
    return RunBaseline(options);
  }
  return RunPrecopyStyle(options);
}
