// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Example: several assisting applications in one guest (§6 "support large
// and multiple applications"). A Java VM (derby-like) and a memcached-like
// cache each report their own skip-over areas; the LKM coordinates both
// through one migration.

#include <cstdio>
#include <iostream>

#include "src/core/liveness.h"
#include "src/migration/engine.h"
#include "src/stats/table.h"
#include "src/workload/cache_application.h"
#include "src/workload/java_application.h"
#include "src/workload/os_process.h"

int main() {
  using namespace javmm;  // NOLINT
  std::printf("Multi-application guest: JVM (derby-like) + cache, one migration\n\n");

  SimClock clock;
  GuestPhysicalMemory memory(2 * kGiB);
  GuestKernel kernel(&memory, &clock);
  kernel.LoadLkm(LkmConfig{});

  Rng rng(31);
  OsBackgroundProcess os(&kernel, OsProcessConfig{}, rng.Fork());

  WorkloadSpec jvm_spec = Workloads::Get("derby");
  jvm_spec.heap.young_max_bytes = 512 * kMiB;  // Leave room for the cache.
  jvm_spec.heap.old_max_bytes = 384 * kMiB;
  jvm_spec.old_baseline_bytes = 96 * kMiB;
  jvm_spec.alloc_rate_bytes_per_sec = 170 * kMiB;
  JavaApplication jvm(&kernel, jvm_spec, rng.Fork());

  CacheAppConfig cache_config;
  cache_config.cache_bytes = 512 * kMiB;
  cache_config.purge_fraction = 0.5;
  CacheApplication cache(&kernel, cache_config, rng.Fork());

  clock.Advance(Duration::Seconds(90));

  MigrationConfig mig;
  mig.application_assisted = true;
  MigrationEngine engine(&kernel, mig);
  JavaLivenessSource jvm_live(&kernel, &jvm);
  RangeLivenessSource cache_live(&kernel, cache.pid());
  cache_live.AddRange(cache.retained_range());
  RangeLivenessSource os_live(&kernel, os.pid());
  os_live.AddRange(os.resident_range());
  engine.AddRequiredPfnSource(&jvm_live);
  engine.AddRequiredPfnSource(&cache_live);
  engine.AddRequiredPfnSource(&os_live);

  const MigrationResult result = engine.Migrate();
  clock.Advance(Duration::Seconds(20));

  Table table({"metric", "value"});
  table.Row().Cell("time").Cell(result.total_time.ToString());
  table.Row().Cell("traffic").Cell(FormatBytes(result.total_wire_bytes));
  table.Row().Cell("downtime").Cell(result.downtime.Total().ToString());
  table.Row().Cell("skipped (both apps)").Cell(
      FormatBytes(result.verification.pages_skipped_garbage * kPageSize));
  table.Row().Cell("cache purges").Cell(cache.purge_count());
  table.Row().Cell("JVM released").Cell(jvm.held_at_safepoint() ? "NO" : "yes");
  table.Row().Cell("verified").Cell(result.verification.ok ? "yes" : "NO");
  table.Print(std::cout);

  std::printf("\nThe LKM multicast one query, merged two skip-over reports into the\n"
              "transfer bitmap, waited for both suspension-ready notices, and applied one\n"
              "final update covering the JVM's From space and the cache's purged suffix.\n");
  return result.verification.ok ? 0 : 1;
}
