// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Example: the framework beyond Java (§6) -- a memcached-like caching
// application assists in its own migration by offering the cold half of its
// cache as a skip-over area, purging it at suspension time and continuing
// with a shrunken cache at the destination.

#include <cstdio>
#include <iostream>

#include "src/core/liveness.h"
#include "src/migration/engine.h"
#include "src/stats/table.h"
#include "src/workload/cache_application.h"
#include "src/workload/os_process.h"

namespace {

javmm::MigrationResult RunOne(bool assisted) {
  using namespace javmm;  // NOLINT
  SimClock clock;
  GuestPhysicalMemory memory(2 * kGiB);
  GuestKernel kernel(&memory, &clock);
  kernel.LoadLkm(LkmConfig{});

  Rng rng(11);
  OsBackgroundProcess os(&kernel, OsProcessConfig{}, rng.Fork());
  CacheAppConfig cache_config;
  cache_config.cache_bytes = 1 * kGiB;
  cache_config.purge_fraction = 0.6;  // Offer the cold 60% for skipping.
  cache_config.write_rate_bytes_per_sec = 24 * kMiB;
  CacheApplication cache(&kernel, cache_config, rng.Fork());

  clock.Advance(Duration::Seconds(60));  // Warm the cache.

  MigrationConfig mig;
  mig.application_assisted = assisted;
  MigrationEngine engine(&kernel, mig);
  RangeLivenessSource retained(&kernel, cache.pid());
  retained.AddRange(cache.retained_range());
  RangeLivenessSource os_live(&kernel, os.pid());
  os_live.AddRange(os.resident_range());
  engine.AddRequiredPfnSource(&retained);
  engine.AddRequiredPfnSource(&os_live);
  MigrationResult result = engine.Migrate();
  clock.Advance(Duration::Seconds(10));
  return result;
}

}  // namespace

int main() {
  using namespace javmm;  // NOLINT
  std::printf("Cache-application migration (framework without a JVM, §6)\n");
  std::printf("1 GiB cache in a 2 GiB VM; cold 60%% offered as skip-over area.\n\n");

  const MigrationResult xen = RunOne(false);
  const MigrationResult assisted = RunOne(true);

  Table table({"engine", "time", "traffic", "downtime", "skipped as purgeable"});
  for (const MigrationResult* r : {&xen, &assisted}) {
    table.Row()
        .Cell(r->assisted ? "assisted" : "plain")
        .Cell(r->total_time.ToString())
        .Cell(FormatBytes(r->total_wire_bytes))
        .Cell(r->downtime.Total().ToString())
        .Cell(FormatBytes(r->verification.pages_skipped_garbage * kPageSize));
  }
  table.Print(std::cout);
  std::printf("\nverified: plain=%s assisted=%s (retained cache entries intact at the "
              "destination;\nthe purged suffix is treated as empty and refills over time)\n",
              xen.verification.ok ? "yes" : "NO", assisted.verification.ok ? "yes" : "NO");
  return (xen.verification.ok && assisted.verification.ok) ? 0 : 1;
}
