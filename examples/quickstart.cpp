// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Quickstart: migrate a 2 GiB VM running the derby workload with both
// vanilla Xen pre-copy and JAVMM, and compare the three headline metrics
// (completion time, network traffic, downtime).

#include <cstdio>
#include <iostream>

#include "src/base/units.h"
#include "src/core/migration_lab.h"
#include "src/stats/table.h"

namespace {

javmm::MigrationResult RunOne(bool assisted, uint64_t seed) {
  javmm::LabConfig config;
  config.seed = seed;
  config.migration.application_assisted = assisted;
  javmm::MigrationLab lab(javmm::Workloads::Get("derby"), config);
  // The paper migrates halfway through a 10-minute run; 120 s of warmup is
  // enough for the heap to reach its steady state.
  lab.Run(javmm::Duration::Seconds(120));
  javmm::MigrationResult result = lab.Migrate();
  lab.Run(javmm::Duration::Seconds(30));  // Keep running at the destination.
  return result;
}

}  // namespace

int main() {
  std::printf("JAVMM quickstart: migrating a 2 GiB derby VM over gigabit Ethernet\n\n");

  const javmm::MigrationResult xen = RunOne(/*assisted=*/false, /*seed=*/7);
  const javmm::MigrationResult javmm_result = RunOne(/*assisted=*/true, /*seed=*/7);

  javmm::Table table({"engine", "time", "traffic", "downtime", "iterations", "verified"});
  for (const auto* r : {&xen, &javmm_result}) {
    table.Row()
        .Cell(r->assisted ? "JAVMM" : "Xen")
        .Cell(r->total_time.ToString())
        .Cell(javmm::FormatBytes(r->total_wire_bytes))
        .Cell(r->downtime.Total().ToString())
        .Cell(static_cast<int64_t>(r->iteration_count()))
        .Cell(r->verification.ok ? "yes" : "NO");
  }
  table.Print(std::cout);

  std::printf("\nJAVMM downtime breakdown: enforced GC %s + final bitmap update %s + "
              "last iteration %s + resumption %s\n",
              javmm_result.downtime.enforced_gc.ToString().c_str(),
              javmm_result.downtime.final_bitmap_update.ToString().c_str(),
              javmm_result.downtime.last_iter_transfer.ToString().c_str(),
              javmm_result.downtime.resumption.ToString().c_str());
  std::printf("JAVMM skipped %lld young-generation pages (%s) across all iterations.\n",
              static_cast<long long>(javmm_result.pages_skipped_bitmap),
              javmm::FormatBytes(javmm_result.pages_skipped_bitmap * javmm::kPageSize).c_str());
  std::printf("Framework overhead: transfer bitmap %s, PFN cache %s.\n",
              javmm::FormatBytes(javmm_result.lkm_bitmap_bytes).c_str(),
              javmm::FormatBytes(javmm_result.lkm_pfn_cache_bytes).c_str());

  if (!xen.verification.ok || !javmm_result.verification.ok) {
    std::fprintf(stderr, "verification FAILED\n");
    return 1;
  }
  return 0;
}
