// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Example: JAVMM with a G1-style regionized collector (§6 future work) --
// the young generation is a non-contiguous set of 4 MiB regions that the
// agent reports as multiple skip-over ranges, keeps current through shrink
// notices and incremental re-reports, and empties with an enforced
// evacuation pause before stop-and-copy.

#include <cstdio>
#include <iostream>

#include "src/core/liveness.h"
#include "src/migration/engine.h"
#include "src/stats/table.h"
#include "src/workload/g1_application.h"
#include "src/workload/os_process.h"

int main() {
  using namespace javmm;  // NOLINT
  std::printf("JAVMM on a regionized (G1-style) collector\n\n");

  SimClock clock;
  GuestPhysicalMemory memory(2 * kGiB);
  GuestKernel kernel(&memory, &clock);
  kernel.LoadLkm(LkmConfig{});

  Rng rng(5);
  OsBackgroundProcess os(&kernel, OsProcessConfig{}, rng.Fork());
  RegionHeapConfig heap;
  heap.region_bytes = 4 * kMiB;
  heap.total_regions = 384;
  heap.max_young_regions = 256;
  G1JavaApplication app(&kernel, Workloads::Get("derby"), heap, rng.Fork());

  clock.Advance(Duration::Seconds(120));
  std::printf("young generation before migration: %lld regions in %zu "
              "non-contiguous VA ranges\n",
              static_cast<long long>(app.heap().young_region_count()),
              app.heap().YoungRanges().size());

  MigrationConfig mig;
  mig.application_assisted = true;
  MigrationEngine engine(&kernel, mig);
  G1LivenessSource live(&kernel, &app);
  RangeLivenessSource os_live(&kernel, os.pid());
  os_live.AddRange(os.resident_range());
  engine.AddRequiredPfnSource(&live);
  engine.AddRequiredPfnSource(&os_live);

  const MigrationResult result = engine.Migrate();
  clock.Advance(Duration::Seconds(20));

  Table table({"metric", "value"});
  table.Row().Cell("time").Cell(result.total_time.ToString());
  table.Row().Cell("traffic").Cell(FormatBytes(result.total_wire_bytes));
  table.Row().Cell("downtime").Cell(result.downtime.Total().ToString());
  table.Row().Cell("young pages skipped").Cell(
      FormatBytes(result.pages_skipped_bitmap * kPageSize));
  table.Row().Cell("verified").Cell(result.verification.ok ? "yes" : "NO");
  table.Print(std::cout);
  std::printf("\nEvery region claim/release during the migration flowed through the\n"
              "framework (shrink notices via the PFN cache, incremental re-reports,\n"
              "survivor must-transfer ranges at the enforced evacuation).\n");
  return result.verification.ok ? 0 : 1;
}
