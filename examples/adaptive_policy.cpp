// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Example: letting the framework decide (§6 "make the framework
// intelligent"). For each workload we warm up, consult the adaptive policy,
// and migrate with whichever engine it recommends.

#include <cstdio>
#include <iostream>

#include "src/core/migration_lab.h"
#include "src/core/policy.h"
#include "src/stats/table.h"

int main() {
  using namespace javmm;  // NOLINT
  std::printf("Adaptive engine selection across the SPECjvm2008 proxies\n\n");

  Table table({"workload", "decision", "why", "downtime", "verified"});
  bool all_ok = true;
  for (const WorkloadSpec& spec : Workloads::All()) {
    LabConfig config;
    config.seed = 23;
    MigrationLab lab(spec, config);
    lab.Run(Duration::Seconds(90));
    const PolicyDecision decision =
        AdaptiveMigrationPolicy::Decide(lab.app().heap(), config.migration.link);
    // Apply the decision to a fresh lab (the probe's clock has advanced; a
    // production system would flip the engine flag in place).
    LabConfig chosen = config;
    chosen.migration.application_assisted = decision.use_assisted;
    MigrationLab run(spec, chosen);
    run.Run(Duration::Seconds(90));
    const MigrationResult result = run.Migrate();
    all_ok = all_ok && result.verification.ok;
    table.Row()
        .Cell(spec.name)
        .Cell(decision.use_assisted ? "JAVMM" : "pre-copy")
        .Cell(decision.reason.substr(0, 60))
        .Cell(result.downtime.Total().ToString())
        .Cell(result.verification.ok ? "yes" : "NO");
  }
  table.Print(std::cout);
  std::printf("\nThe policy enables JAVMM for garbage-rich workloads and falls back to\n"
              "plain pre-copy in the scimark regime the paper warns about.\n");
  return all_ok ? 0 : 1;
}
