// Copyright (c) 2026 The JAVMM Reproduction Authors.
// javmm-lint CLI: scans the given files/directories and reports violations
// of the project's determinism & correctness contract (DESIGN.md §9).
//
//   tools/javmm_lint [options] PATH...
//
//   --json                  one JSON object per finding instead of text
//   --baseline=FILE         suppress findings recorded in FILE
//   --write-baseline=FILE   write all findings to FILE and exit 0
//   --disable=RULE          turn one rule off (repeatable)
//   --only=RULE             run only the named rules (repeatable;
//                           --disable still subtracts)
//   --list-rules            print the rule catalogue and exit
//
// Unknown rule names in --disable=/--only= are hard usage errors (exit 2):
// a typo must not silently widen or narrow what the CI lint job enforces.
//
// Exit codes: 0 = clean (after baseline), 1 = findings, 2 = usage/IO error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/lint/lint.h"

namespace {

bool ReadFile(const std::string& path, std::string* out, std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    *error = "cannot read '" + path + "'";
    return false;
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  *out = ss.str();
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: javmm_lint [--json] [--baseline=FILE] [--write-baseline=FILE]\n"
               "                  [--disable=RULE]... [--only=RULE]... [--list-rules] PATH...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace javmm::lint;

  bool json = false;
  std::string baseline_path;
  std::string write_baseline_path;
  LintOptions options;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = arg.substr(17);
    } else if (arg.rfind("--disable=", 0) == 0) {
      const std::string rule = arg.substr(10);
      if (!IsKnownRule(rule)) {
        std::fprintf(stderr, "javmm_lint: unknown rule '%s' (see --list-rules)\n", rule.c_str());
        return 2;
      }
      options.disabled_rules.insert(rule);
    } else if (arg.rfind("--only=", 0) == 0) {
      const std::string rule = arg.substr(7);
      if (!IsKnownRule(rule)) {
        std::fprintf(stderr, "javmm_lint: unknown rule '%s' (see --list-rules)\n", rule.c_str());
        return 2;
      }
      options.only_rules.insert(rule);
    } else if (arg == "--list-rules") {
      for (const std::string& rule : AllRules()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    return Usage();
  }

  std::string error;
  const std::vector<std::string> files = CollectSourceFiles(paths, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "javmm_lint: %s\n", error.c_str());
    return 2;
  }

  // Pass 1: tokenize everything and build the cross-file registry (enum
  // types, unordered-container names) so declarations in one file inform
  // rules in another.
  std::vector<TokenizedSource> sources;
  sources.reserve(files.size());
  LintRegistry registry;
  for (const std::string& file : files) {
    std::string content;
    if (!ReadFile(file, &content, &error)) {
      std::fprintf(stderr, "javmm_lint: %s\n", error.c_str());
      return 2;
    }
    sources.push_back(Tokenize(content));
    CollectRegistry(sources.back(), &registry);
  }

  // Pass 2: run the rules.
  std::vector<Diagnostic> findings;
  for (size_t i = 0; i < files.size(); ++i) {
    std::vector<Diagnostic> diags = LintSource(files[i], sources[i], registry, options);
    findings.insert(findings.end(), diags.begin(), diags.end());
  }

  if (!write_baseline_path.empty()) {
    std::ofstream os(write_baseline_path, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "javmm_lint: cannot write '%s'\n", write_baseline_path.c_str());
      return 2;
    }
    os << Baseline::Serialize(findings);
    std::fprintf(stderr, "javmm_lint: wrote %zu finding(s) to %s\n", findings.size(),
                 write_baseline_path.c_str());
    return 0;
  }

  Baseline baseline;
  if (!baseline_path.empty()) {
    std::string content;
    if (!ReadFile(baseline_path, &content, &error)) {
      std::fprintf(stderr, "javmm_lint: %s\n", error.c_str());
      return 2;
    }
    baseline = Baseline::Parse(content);
  }

  int reported = 0;
  for (const Diagnostic& diag : findings) {
    if (baseline.Covers(diag)) {
      continue;
    }
    ++reported;
    std::cout << (json ? diag.ToJson() : diag.ToString()) << "\n";
  }
  if (reported > 0 && !json) {
    std::fprintf(stderr, "javmm_lint: %d finding(s) in %zu file(s) scanned\n", reported,
                 files.size());
  }
  return reported > 0 ? 1 : 0;
}
