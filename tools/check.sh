#!/usr/bin/env bash
# Pre-commit gate: format check (when clang-format is installed), the
# javmm-lint static-analysis pass, and the sanitizer-free smoke suites.
# Usage: tools/check.sh   (from anywhere inside the repo)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"
status=0

# --- 1. Format ---------------------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  echo "== check.sh: clang-format --dry-run =="
  mapfile -t files < <(git ls-files 'src/*.h' 'src/*.cc' 'bench/*.h' 'bench/*.cpp' \
                                    'tools/*.cc' 'tests/*.cc' | grep -v '^tests/lint_fixtures/')
  if ! clang-format --dry-run --Werror "${files[@]}"; then
    echo "check.sh: FORMAT FAILURES (run clang-format -i on the files above)" >&2
    status=1
  fi
elif [[ -n "${CI:-}" ]]; then
  # CI must never silently drop a gate: a runner image missing clang-format
  # would otherwise pass while enforcing two of the three layers.
  echo "check.sh: clang-format is REQUIRED in CI but not installed" >&2
  status=1
else
  echo "== check.sh: clang-format not installed; skipping format layer (local run) =="
fi

# --- 2. javmm-lint -----------------------------------------------------------
echo "== check.sh: javmm-lint =="
if ! "${repo_root}/tools/javmm_lint" --baseline=tools/lint_baseline.txt src bench tests; then
  echo "check.sh: LINT FAILURES (annotate with '// lint: <rule>-ok (reason)' only" >&2
  echo "          when the finding is a deliberate, order-independent use)" >&2
  status=1
fi

# --- 2b. unit dataflow rules, baseline-free ---------------------------------
# The unit rules run above too, but this pass is deliberately un-baselined:
# unit-crossing arithmetic and overflowable products (DESIGN.md §13) must
# never be grandfathered, only fixed or suppressed with a reason in-line.
echo "== check.sh: javmm-lint unit rules (no baseline) =="
if ! "${repo_root}/tools/javmm_lint" \
       --only=unit-mix --only=unit-assign --only=overflow-mul \
       --only=narrowing-cast --only=div-before-mul src bench tests; then
  echo "check.sh: UNIT-RULE FAILURES (use CheckedAdd/CheckedMul/MulDiv from" >&2
  echo "          src/base/units.h, or convert the units explicitly)" >&2
  status=1
fi

# --- 3. Smoke ----------------------------------------------------------------
echo "== check.sh: smoke suites =="
cmake --build "${repo_root}/build" --target smoke

if [[ ${status} -ne 0 ]]; then
  echo "check.sh: FAILED" >&2
else
  echo "check.sh: OK"
fi
exit ${status}
