// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Ablation (§6 "enhance the proposed framework for security"): bound the
// delay a non-cooperative application can impose. Two defence layers exist:
// the LKM's straggler timeout (revoke the app's skip-over areas, proceed),
// and the daemon's own response timeout (fall back to unassisted transfer of
// everything ever skipped). We sweep the straggler timeout and show both
// layers keep migration correct and bounded.

#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

int main() {
  std::printf("=== Ablation: straggler/timeout handling (§6), derby, non-cooperative ===\n\n");
  Table table({"lkm timeout(s)", "daemon timeout(s)", "resolution", "time(s)", "downtime(s)",
               "traffic(GiB)", "verified"});
  struct Case {
    double lkm_timeout_s;
    double daemon_timeout_s;
  };
  // First rows: LKM timeout fires first (revocation). Last row: the LKM never
  // answers in time, the daemon falls back.
  const Case cases[] = {{1.0, 30.0}, {5.0, 30.0}, {10.0, 30.0}, {60.0, 3.0}};
  for (const Case& c : cases) {
    RunOptions options;
    options.lab.agent.cooperative = false;
    options.lab.lkm.straggler_timeout = Duration::SecondsF(c.lkm_timeout_s);
    options.lab.migration.lkm_response_timeout = Duration::SecondsF(c.daemon_timeout_s);
    const RunOutput out = RunMigrationExperiment(Workloads::Get("derby"), /*assisted=*/true,
                                                 options);
    table.Row()
        .Cell(c.lkm_timeout_s, 0)
        .Cell(c.daemon_timeout_s, 0)
        .Cell(out.result.fell_back_unassisted ? "daemon fallback" : "LKM revocation")
        .Cell(out.result.total_time.ToSecondsF(), 1)
        .Cell(out.result.downtime.Total().ToSecondsF(), 2)
        .Cell(GiBOf(out.result.total_wire_bytes), 2)
        .Cell(out.result.verification.ok ? "yes" : "NO");
  }

  // Baseline: cooperative run for comparison.
  const RunOutput good = RunMigrationExperiment(Workloads::Get("derby"), /*assisted=*/true);
  table.Row()
      .Cell("-")
      .Cell("-")
      .Cell("cooperative")
      .Cell(good.result.total_time.ToSecondsF(), 1)
      .Cell(good.result.downtime.Total().ToSecondsF(), 2)
      .Cell(GiBOf(good.result.total_wire_bytes), 2)
      .Cell(good.result.verification.ok ? "yes" : "NO");
  table.Print(std::cout);
  std::printf("\nshape check: a silent application costs exactly the configured timeout plus\n"
              "the (now unassisted) stop-and-copy of its memory -- never an unbounded\n"
              "delay -- and every resolution path preserves correctness.\n");
  return 0;
}
