// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Ablation (§6 "incorporate compression"): compression trades CPU for
// bandwidth. Three variants on top of plain/assisted pre-copy:
//   * uniform compression -- every sent page through one compressor;
//   * class-aware compression -- the multi-bit transfer map: applications
//     annotate per-page compressibility (JVM: old gen compresses very well;
//     cache: values are already compressed), so the daemon picks per page;
//   * delta retransmission (Svard et al. [35]) -- pages the destination
//     already holds ship as deltas.
// JAVMM composes with all of them and compresses only what it actually
// sends ("compress only the memory pages that have not been skipped over").

#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

namespace {

struct Variant {
  const char* name;
  bool compress;
  bool classes;
  bool delta;
};

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation: compression extension (§6), derby workload ===\n\n");
  const Variant variants[] = {
      {"none", false, false, false},
      {"uniform", true, false, false},
      {"class-aware", true, true, false},
      {"uniform+delta", true, false, true},
  };

  ExperimentSet set(ParseBenchArgs(argc, argv));
  for (const bool assisted : {false, true}) {
    for (const Variant& v : variants) {
      RunOptions options;
      options.lab.migration.compress_pages = v.compress;
      options.lab.migration.use_compression_classes = v.classes;
      options.lab.migration.delta_compression = v.delta;
      set.Add(EngineName(assisted) + "/" + v.name, Workloads::Get("derby"), assisted, options);
    }
  }
  set.Run();

  Table table({"engine", "variant", "time(s)", "traffic(GiB)", "downtime(s)", "cpu(s)",
               "compressed", "delta", "raw"});
  size_t i = 0;
  for (const bool assisted : {false, true}) {
    for (const Variant& v : variants) {
      const RunOutput& out = set.out(i++);
      table.Row()
          .Cell(EngineName(assisted))
          .Cell(v.name)
          .Cell(out.result.total_time.ToSecondsF(), 1)
          .Cell(GiBOf(out.result.total_wire_bytes), 2)
          .Cell(out.result.downtime.Total().ToSecondsF(), 2)
          .Cell(out.result.cpu_time.ToSecondsF(), 2)
          .Cell(out.result.pages_compressed)
          .Cell(out.result.pages_sent_delta)
          .Cell(out.result.pages_sent_raw);
    }
  }
  table.Print(std::cout);
  std::printf("\nshape check: compression shrinks wire traffic and time at a CPU cost;\n"
              "class-aware compression squeezes the (annotated) old generation harder for\n"
              "less CPU; delta helps exactly the retransmission-heavy vanilla engine; and\n"
              "JAVMM pays the compressor on ~7x fewer pages than Xen for the same VM.\n");
  return set.ExitCode();
}
