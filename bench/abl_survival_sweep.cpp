// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Ablation (§6 "when to use JAVMM"): sweep the workload's mean object
// lifetime from derby-like (tens of milliseconds; almost everything dies
// before the enforced GC) to scimark-like (seconds; most of the young
// generation survives) and locate the crossover where JAVMM's downtime
// becomes worse than plain pre-copy -- the regime the paper flags ("many
// objects may survive the enforced GC and must be transferred during
// stop-and-copy").

#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

namespace {

WorkloadSpec SweepSpec(Duration short_mean, int64_t alloc_rate) {
  WorkloadSpec spec = Workloads::Get("derby");
  spec.name = "sweep";
  spec.alloc_rate_bytes_per_sec = alloc_rate;
  spec.long_lived_fraction = 0.01;
  spec.short_lifetime_mean = short_mean;
  spec.long_lifetime_mean = Duration::Seconds(25);
  spec.old_baseline_bytes = 64 * kMiB;
  spec.heap.survivor_fraction = 0.25;  // Room for high-survival runs.
  spec.heap.tenure_threshold = 2;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation: object-lifetime sweep (JAVMM vs Xen downtime crossover) ===\n");
  std::printf("(live working set rate*lifetime held <= ~350 MiB, as in real workloads whose\n"
              "heaps fit; moving right along the table is moving from derby toward scimark)\n\n");
  struct Point {
    int lifetime_ms;
    int64_t rate;
  };
  const Point points[] = {{30, 160 * kMiB},  {200, 160 * kMiB}, {800, 160 * kMiB},
                          {1500, 160 * kMiB}, {3000, 110 * kMiB}, {6000, 55 * kMiB},
                          {12000, 28 * kMiB}};

  ExperimentSet set(ParseBenchArgs(argc, argv));
  for (const Point& pt : points) {
    const WorkloadSpec spec = SweepSpec(Duration::Millis(pt.lifetime_ms), pt.rate);
    RunOptions options;
    options.warmup = Duration::Seconds(90);
    for (const bool assisted : {false, true}) {
      char label[64];
      std::snprintf(label, sizeof(label), "%dms/%s", pt.lifetime_ms,
                    EngineName(assisted).c_str());
      set.Add(label, spec, assisted, options);
    }
  }
  set.Run();

  Table table({"mean lifetime(ms)", "alloc(MiB/s)", "last-iter payload(MiB)",
               "Xen downtime(s)", "JAVMM downtime(s)", "JAVMM wins?"});
  size_t i = 0;
  for (const Point& pt : points) {
    const RunOutput& xen = set.out(i++);
    const RunOutput& javmm_run = set.out(i++);
    table.Row()
        .Cell(static_cast<int64_t>(pt.lifetime_ms))
        .Cell(MiBOf(pt.rate), 0)
        .Cell(PagesToMiB(javmm_run.result.last_iter_pages_sent), 1)
        .Cell(xen.result.downtime.Total().ToSecondsF(), 2)
        .Cell(javmm_run.result.downtime.Total().ToSecondsF(), 2)
        .Cell(javmm_run.result.downtime.Total() < xen.result.downtime.Total() ? "yes" : "no");
  }
  table.Print(std::cout);
  std::printf("\nshape check: longer-lived objects mean more survivors of the enforced GC,\n"
              "a bigger stop-and-copy payload, and eventually a JAVMM downtime worse than\n"
              "plain pre-copy's -- the scimark regime of Fig 10(c). The crossover is where\n"
              "the adaptive policy (abl_adaptive_policy) flips engines.\n");
  return set.ExitCode();
}
