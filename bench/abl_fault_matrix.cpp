// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Ablation (fault tolerance): the paper's evaluation assumes a healthy
// dedicated migration link; this exhibit asks what each engine pays when the
// link misbehaves. A matrix of deterministic fault regimes (FaultPlan specs,
// src/faults/) crosses plain pre-copy and JAVMM: bandwidth collapse, lossy
// control channel, a mid-migration outage, and the combined worst case. The
// recovery path (retry/backoff/degrade, src/migration/engine.cc) must land
// every run -- memory verification and the trace audit gate the exit code --
// and the fault counters show what the landing cost.

#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

namespace {

struct FaultRegime {
  const char* name;
  const char* spec;  // FaultPlan::Parse syntax, relative to migration start.
};

// Regimes ordered from benign to hostile. Windows are sized against crypto's
// multi-second migration so every fault actually intersects the transfer.
constexpr FaultRegime kRegimes[] = {
    {"healthy", ""},
    {"bw-collapse", "bw:0s-120s@0.3"},
    {"lossy-ctl", "loss:0.4"},
    {"outage", "out:2s-3s"},
    {"combined", "bw:0s-120s@0.5;loss:0.4;out:2s-2500ms"},
};

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation: link-fault matrix, crypto workload ===\n\n");

  ExperimentSet set(ParseBenchArgs(argc, argv));
  for (const FaultRegime& regime : kRegimes) {
    for (const bool assisted : {false, true}) {
      RunOptions options;
      options.warmup = Duration::Seconds(30);  // Short warmup: faults, not GC, star here.
      options.fault_spec = regime.spec;
      char label[64];
      std::snprintf(label, sizeof(label), "%s/%s", regime.name, EngineName(assisted).c_str());
      set.Add(label, Workloads::Get("crypto"), assisted, options);
    }
  }
  set.Run();

  Table table({"regime", "engine", "time(s)", "traffic(GiB)", "retry(MiB)", "backoff(s)",
               "losses", "bursts", "degraded", "verified"});
  size_t i = 0;
  for (const FaultRegime& regime : kRegimes) {
    for (const bool assisted : {false, true}) {
      const MigrationResult& r = set.result(i++);
      table.Row()
          .Cell(regime.name)
          .Cell(EngineName(assisted))
          .Cell(r.total_time.ToSecondsF(), 1)
          .Cell(GiBOf(r.total_wire_bytes), 2)
          .Cell(MiBOf(r.retry_wire_bytes), 2)
          .Cell(r.backoff_time.ToSecondsF(), 2)
          .Cell(r.control_losses)
          .Cell(r.burst_faults)
          .Cell(r.degraded ? DegradeReasonName(r.degrade_reason) : "no")
          .Cell(r.verification.ok ? "yes" : "NO");
    }
  }
  table.Print(std::cout);
  std::printf("\nshape check: every row must verify -- recovery may cost time, traffic and\n"
              "backoff, never pages. The healthy row pins the baseline; bw-collapse slows\n"
              "both engines proportionally; lossy-ctl charges per-iteration control retries\n"
              "(so Xen, with more live rounds, pays more often); the outage rows show the\n"
              "retry/backoff machinery waiting the link out or degrading to stop-and-copy.\n");
  return set.ExitCode();
}
