// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Ablation (fault tolerance): the paper's evaluation assumes a healthy
// dedicated migration link; this exhibit asks what each engine pays when the
// link misbehaves. A matrix of deterministic fault regimes (FaultPlan specs,
// src/faults/) crosses all four engines -- plain pre-copy, JAVMM,
// stop-and-copy and post-copy: bandwidth collapse, lossy control channel, a
// mid-migration outage, and the combined worst case. The recovery paths
// (retry/backoff/degrade in src/migration/engine.cc and the baseline
// equivalents in src/migration/baselines.cc) must land every run -- memory
// verification and the trace audit gate the exit code -- and the fault
// counters show what the landing cost. Post-copy pays in downtime (device
// state waits outages out) and in the degradation window (demand-fetch
// stalls, pre-paging retries); the pre-copy family pays in total time and
// retry traffic.

#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

namespace {

struct FaultRegime {
  const char* name;
  const char* spec;  // FaultPlan::Parse syntax, relative to migration start.
};

// Regimes ordered from benign to hostile. Windows are sized against crypto's
// multi-second migration so every fault actually intersects the transfer.
constexpr FaultRegime kRegimes[] = {
    {"healthy", ""},
    {"bw-collapse", "bw:0s-120s@0.3"},
    {"lossy-ctl", "loss:0.4"},
    {"outage", "out:2s-3s"},
    {"combined", "bw:0s-120s@0.5;loss:0.4;out:2s-2500ms"},
};

constexpr EngineKind kEngines[] = {EngineKind::kXenPrecopy, EngineKind::kJavmm,
                                   EngineKind::kStopAndCopy, EngineKind::kPostcopy};

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation: link-fault matrix, crypto workload ===\n\n");

  ExperimentSet set(ParseBenchArgs(argc, argv));
  for (const FaultRegime& regime : kRegimes) {
    for (const EngineKind kind : kEngines) {
      RunOptions options;
      options.warmup = Duration::Seconds(30);  // Short warmup: faults, not GC, star here.
      options.fault_spec = regime.spec;
      Scenario scenario;
      char label[64];
      std::snprintf(label, sizeof(label), "%s/%s", regime.name, EngineKindName(kind));
      scenario.label = label;
      scenario.spec = Workloads::Get("crypto");
      scenario.engine = kind;
      scenario.options = options;
      set.Add(std::move(scenario));
    }
  }
  set.Run();

  Table table({"regime", "engine", "time(s)", "down(s)", "dwindow(s)", "traffic(GiB)",
               "retry(MiB)", "backoff(s)", "losses", "bursts", "degraded", "verified"});
  size_t i = 0;
  for (const FaultRegime& regime : kRegimes) {
    for (const EngineKind kind : kEngines) {
      const RunOutput& out = set.out(i++);
      const MigrationResult& r = out.result;
      table.Row()
          .Cell(regime.name)
          .Cell(EngineKindName(kind))
          .Cell(r.total_time.ToSecondsF(), 1)
          .Cell(r.downtime.Total().ToSecondsF(), 3)
          .Cell(out.degradation_window.ToSecondsF(), 2)
          .Cell(GiBOf(r.total_wire_bytes), 2)
          .Cell(MiBOf(r.retry_wire_bytes), 2)
          .Cell(r.backoff_time.ToSecondsF(), 2)
          .Cell(r.control_losses)
          .Cell(r.burst_faults)
          .Cell(r.degraded ? DegradeReasonName(r.degrade_reason) : "no")
          .Cell(r.verification.ok ? "yes" : "NO");
    }
  }
  table.Print(std::cout);
  std::printf("\nshape check: every row must verify -- recovery may cost time, traffic and\n"
              "backoff, never pages. The healthy rows pin the baseline; bw-collapse slows\n"
              "every engine proportionally; lossy-ctl charges control retries (Xen's live\n"
              "rounds and post-copy's demand fetches); the outage rows show the machinery\n"
              "waiting the link out or degrading (pre-copy to stop-and-copy, post-copy to\n"
              "pure demand paging). Post-copy pays outages inside the pause as downtime\n"
              "and pays losses as demand-fetch stall inside the degradation window.\n");
  return set.ExitCode();
}
