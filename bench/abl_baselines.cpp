// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Ablation: JAVMM against the §2 related-work strategy space on the derby
// workload -- non-live stop-and-copy, pre-copy (Xen), post-copy [18,19], and
// application-assisted pre-copy (JAVMM). Reproduces the paper's qualitative
// positioning: post-copy minimises downtime but "incurs performance
// penalties" fetching pages from the source; stop-and-copy minimises traffic
// but its downtime is the whole transfer; JAVMM gets near-post-copy downtime
// with pre-copy's safety and the least traffic of the live strategies.

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "src/migration/baselines.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

int main() {
  std::printf("=== Ablation: migration-strategy comparison, derby, 2 GiB VM ===\n\n");
  Table table({"strategy", "time(s)", "traffic(GiB)", "downtime(s)", "degradation",
               "verified"});

  // Stop-and-copy.
  {
    LabConfig config;
    config.seed = 9;
    MigrationLab lab(Workloads::Get("derby"), config);
    lab.Run(Duration::Seconds(120));
    StopAndCopyEngine engine(&lab.guest(), config.migration);
    const MigrationResult r = engine.Migrate();
    table.Row()
        .Cell("stop-and-copy")
        .Cell(r.total_time.ToSecondsF(), 1)
        .Cell(GiBOf(r.total_wire_bytes), 2)
        .Cell(r.downtime.Total().ToSecondsF(), 2)
        .Cell("none")
        .Cell(r.verification.ok ? "yes" : "NO");
  }

  // Pre-copy (Xen) and JAVMM.
  for (const bool assisted : {false, true}) {
    RunOptions options;
    options.seed = 9;
    const RunOutput out = RunMigrationExperiment(Workloads::Get("derby"), assisted, options);
    table.Row()
        .Cell(assisted ? "JAVMM" : "pre-copy (Xen)")
        .Cell(out.result.total_time.ToSecondsF(), 1)
        .Cell(GiBOf(out.result.total_wire_bytes), 2)
        .Cell(out.result.downtime.Total().ToSecondsF(), 2)
        .Cell("none")
        .Cell(out.result.verification.ok ? "yes" : "NO");
  }

  // Post-copy.
  {
    LabConfig config;
    config.seed = 9;
    MigrationLab lab(Workloads::Get("derby"), config);
    lab.Run(Duration::Seconds(120));
    PostcopyEngine::Config pc;
    pc.base = config.migration;
    PostcopyEngine engine(&lab.guest(), pc);
    const PostcopyResult r = engine.Migrate();
    char degradation[96];
    std::snprintf(degradation, sizeof(degradation), "%.1fs window, %lld faults, %.2fs stall",
                  r.degradation_window.ToSecondsF(), static_cast<long long>(r.demand_faults),
                  r.fault_stall.ToSecondsF());
    table.Row()
        .Cell("post-copy")
        .Cell(r.common.total_time.ToSecondsF(), 1)
        .Cell(GiBOf(r.common.total_wire_bytes), 2)
        .Cell(r.common.downtime.Total().ToSecondsF(), 2)
        .Cell(degradation)
        .Cell(r.common.verification.ok ? "yes" : "NO");
  }

  table.Print(std::cout);
  std::printf("\nshape check (paper §2): post-copy's downtime is minimal but it pays a\n"
              "degradation window of demand faults; stop-and-copy's downtime IS the\n"
              "transfer; vanilla pre-copy cannot converge under derby; JAVMM combines\n"
              "sub-second downtime with the smallest traffic of the live strategies.\n");
  return 0;
}
