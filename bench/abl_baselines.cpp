// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Ablation: JAVMM against the §2 related-work strategy space on the derby
// workload -- non-live stop-and-copy, pre-copy (Xen), post-copy [18,19], and
// application-assisted pre-copy (JAVMM). Reproduces the paper's qualitative
// positioning: post-copy minimises downtime but "incurs performance
// penalties" fetching pages from the source; stop-and-copy minimises traffic
// but its downtime is the whole transfer; JAVMM gets near-post-copy downtime
// with pre-copy's safety and the least traffic of the live strategies.

#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

int main(int argc, char** argv) {
  std::printf("=== Ablation: migration-strategy comparison, derby, 2 GiB VM ===\n\n");
  const struct {
    EngineKind kind;
    const char* name;
  } strategies[] = {
      {EngineKind::kStopAndCopy, "stop-and-copy"},
      {EngineKind::kXenPrecopy, "pre-copy (Xen)"},
      {EngineKind::kJavmm, "JAVMM"},
      {EngineKind::kPostcopy, "post-copy"},
  };

  ExperimentSet set(ParseBenchArgs(argc, argv));
  for (const auto& strategy : strategies) {
    Scenario scenario;
    scenario.label = strategy.name;
    scenario.spec = Workloads::Get("derby");
    scenario.engine = strategy.kind;
    scenario.options.seed = 9;
    set.Add(scenario);
  }
  set.Run();

  Table table({"strategy", "time(s)", "traffic(GiB)", "downtime(s)", "degradation",
               "verified"});
  for (size_t i = 0; i < 4; ++i) {
    const RunOutput& out = set.out(i);
    char degradation[96] = "none";
    if (strategies[i].kind == EngineKind::kPostcopy) {
      std::snprintf(degradation, sizeof(degradation), "%.1fs window, %lld faults, %.2fs stall",
                    out.degradation_window.ToSecondsF(),
                    static_cast<long long>(out.demand_faults), out.fault_stall.ToSecondsF());
    }
    table.Row()
        .Cell(strategies[i].name)
        .Cell(out.result.total_time.ToSecondsF(), 1)
        .Cell(GiBOf(out.result.total_wire_bytes), 2)
        .Cell(out.result.downtime.Total().ToSecondsF(), 2)
        .Cell(degradation)
        .Cell(out.result.verification.ok ? "yes" : "NO");
  }

  table.Print(std::cout);
  std::printf("\nshape check (paper §2): post-copy's downtime is minimal but it pays a\n"
              "degradation window of demand faults; stop-and-copy's downtime IS the\n"
              "transfer; vanilla pre-copy cannot converge under derby; JAVMM combines\n"
              "sub-second downtime with the smallest traffic of the live strategies.\n");
  return set.ExitCode();
}
