// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Table 3 + Figure 12: impact of the young-generation size for Category-1
// workloads (high allocation rate, short-lived objects): xml with a 1.5 GiB
// young cap, derby with 1 GiB, compiler with 0.5 GiB -- all reach their caps
// by migration time. Paper anchors: the larger the young generation, the
// worse Xen gets (up to 13 s downtime at 1.5 GiB) and the better JAVMM gets
// (-91%/-82%/-69% time; -93% traffic for xml; JAVMM downtime ~1.2 s flat).

#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

int main() {
  constexpr int kSeeds = 3;
  struct Case {
    const char* workload;
    int64_t young_cap;
  };
  const Case cases[] = {
      {"xml", 1536 * kMiB}, {"derby", 1024 * kMiB}, {"compiler", 512 * kMiB}};

  std::printf("=== Table 3: Category-1 settings (young cap = observed young) ===\n");
  Table settings({"workload", "max young(MiB)", "young@migration(MiB)", "old@migration(MiB)",
                  "share of VM"});

  struct Agg {
    MetricSummary xen;
    MetricSummary javmm;
    Summary javmm_downtime_parts[3];  // gc, last-iter, safepoint-wait.
    bool verified = true;
  };
  std::vector<Agg> aggs(3);

  for (size_t c = 0; c < 3; ++c) {
    const WorkloadSpec spec =
        Workloads::WithYoungCap(Workloads::Get(cases[c].workload), cases[c].young_cap);
    Summary young;
    Summary old_gen;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      for (const bool assisted : {false, true}) {
        RunOptions options;
        options.seed = static_cast<uint64_t>(seed);
        const RunOutput out = RunMigrationExperiment(spec, assisted, options);
        (assisted ? aggs[c].javmm : aggs[c].xen).Add(out.result);
        aggs[c].verified = aggs[c].verified && RunClean(out.result);
        if (assisted) {
          young.Add(MiBOf(out.young_at_migration));
          old_gen.Add(MiBOf(out.old_at_migration));
          aggs[c].javmm_downtime_parts[0].Add(out.result.downtime.enforced_gc.ToSecondsF());
          aggs[c].javmm_downtime_parts[1].Add(
              out.result.downtime.last_iter_transfer.ToSecondsF());
          aggs[c].javmm_downtime_parts[2].Add(out.result.downtime.safepoint_wait.ToSecondsF());
        }
      }
    }
    settings.Row()
        .Cell(cases[c].workload)
        .Cell(MiBOf(cases[c].young_cap), 0)
        .Cell(young.Mean(), 0)
        .Cell(old_gen.Mean(), 0)
        .Cell(young.Mean() / 2048, 2);
  }
  settings.Print(std::cout);
  std::printf("(paper Table 3: xml 1536/28, derby 1024/259, compiler 512/86 MiB; "
              "75%%/50%%/25%% of VM memory)\n\n");

  const char* metric_names[] = {"Figure 12(a): total migration time (s)",
                                "Figure 12(b): total migration traffic (GiB)",
                                "Figure 12(c): workload downtime (s)"};
  for (int m = 0; m < 3; ++m) {
    std::printf("=== %s ===\n", metric_names[m]);
    Table table({"workload(young)", "Xen", "JAVMM", "reduction", "runs"});
    for (size_t c = 0; c < 3; ++c) {
      const Summary& xs = m == 0   ? aggs[c].xen.time_s
                          : m == 1 ? aggs[c].xen.traffic_gib
                                   : aggs[c].xen.downtime_s;
      const Summary& js = m == 0   ? aggs[c].javmm.time_s
                          : m == 1 ? aggs[c].javmm.traffic_gib
                                   : aggs[c].javmm.downtime_s;
      char label[64];
      std::snprintf(label, sizeof(label), "%s(%lld MiB)", cases[c].workload,
                    static_cast<long long>(cases[c].young_cap / kMiB));
      table.Row()
          .Cell(label)
          .Cell(xs.ToString())
          .Cell(js.ToString())
          .Cell(ReductionPct(xs.Mean(), js.Mean()), 0)
          .Cell(aggs[c].xen.CountsLabel() + " / " + aggs[c].javmm.CountsLabel());
    }
    table.Print(std::cout);
    std::printf("\n");
  }

  std::printf("JAVMM downtime composition (mean): ");
  for (size_t c = 0; c < 3; ++c) {
    std::printf("%s[gc %.2fs, last-iter %.2fs] ", cases[c].workload,
                aggs[c].javmm_downtime_parts[0].Mean(), aggs[c].javmm_downtime_parts[1].Mean());
  }
  std::printf("\n");
  std::printf("shape check (paper): Xen degrades with young size (xml worst, ~13 s "
              "downtime); JAVMM improves with young size (time -91%%/-82%%/-69%%), with\n"
              "downtime ~constant (~1.2 s) since it is GC + survivors, not young size.\n");
  bool all_ok = true;
  for (const Agg& agg : aggs) {
    all_ok = all_ok && agg.verified;
  }
  std::printf("all runs verified: %s\n", all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
