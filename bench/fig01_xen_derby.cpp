// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Figure 1: live migration of a 2 GB Xen VM running the Apache Derby database
// workload over gigabit Ethernet. Per-iteration duration, transfer rate and
// dirtying rate; the dirtying rate exceeds the transfer rate, so iterations
// never shrink and the migration is forced into stop-and-copy after excessive
// traffic (paper: 66 s, 7 GB total, ~8 s downtime).

#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;        // NOLINT
using namespace javmm::bench;  // NOLINT

int main() {
  std::printf("=== Figure 1: vanilla Xen migration of a 2 GiB derby VM ===\n");
  std::printf("paper: no convergence; 66 s completion, 7 GB traffic, ~8 s downtime\n\n");

  const RunOutput out = RunMigrationExperiment(Workloads::Get("derby"), /*assisted=*/false);
  const MigrationResult& r = out.result;

  Table table({"iter", "duration(s)", "sent(MiB)", "transfer(pages/s)", "dirtied(pages/s)",
               "dirty-after(pages)"});
  for (const IterationRecord& it : r.iterations) {
    table.Row()
        .Cell(static_cast<int64_t>(it.index))
        .Cell(it.duration.ToSecondsF(), 2)
        .Cell(PagesToMiB(it.pages_sent), 1)
        .Cell(it.TransferRatePagesPerSec(), 0)
        .Cell(it.DirtyRatePagesPerSec(), 0)
        .Cell(it.dirty_pages_after);
  }
  table.Print(std::cout);

  std::printf("\nTotal: %.1f s, %.2f GiB traffic, downtime %.2f s, %d iterations\n",
              r.total_time.ToSecondsF(), GiBOf(r.total_wire_bytes),
              r.downtime.Total().ToSecondsF(), r.iteration_count());
  std::printf("Shape check (paper): dirtying rate stays >= transfer rate across live "
              "iterations; traffic ~3.5x VM size; verified=%s\n",
              r.verification.ok ? "yes" : "NO");
  return r.verification.ok ? 0 : 1;
}
