// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Ablation (hotness-scored pre-copy ordering, DESIGN.md §12): runs every
// SPECjvm2008 workload spec under plain pre-copy with hotness off and on,
// plus the JAVMM/LKM-bitmap engine as the application-assisted yardstick.
// The fixed ascending-PFN send order re-ships frequently-dirtied pages in
// every live round; hotness scoring orders each round coldest-first and
// parks pages that keep re-dirtying in the stop-and-copy final set (bounded
// by the defer budget), so each hot page crosses the wire once instead of
// once per round.
//
// Exit gates: hotness-on must strictly reduce total wire bytes on at least
// 6 of the 9 workloads, and on every workload its downtime may exceed the
// hotness-off downtime by at most the configured defer budget (the bound
// max_deferred_pages_ enforces). Every run must still verify and pass its
// trace audit, which now includes the hotness-defer identities.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

namespace {

// One spec for the whole sweep so the downtime gate below can name its
// budget; bare "on" semantics with the knobs written out for the record.
constexpr char kHotnessSpec[] = "rate:1,score:8,decay:1,budget:500ms";
constexpr Duration kDeferBudget = Duration::Millis(500);

constexpr const char* kWorkloads[] = {"derby",  "compiler", "xml",  "sunflow", "serial",
                                      "crypto", "scimark",  "mpeg", "compress"};

struct Variant {
  const char* name;
  EngineKind engine;
  const char* hotness_spec;
};

constexpr Variant kVariants[] = {
    {"xen/off", EngineKind::kXenPrecopy, "off"},
    {"xen/hot", EngineKind::kXenPrecopy, kHotnessSpec},
    {"javmm/off", EngineKind::kJavmm, "off"},
};

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation: hotness-scored pre-copy ordering, all nine workloads ===\n\n");

  ExperimentSet set(ParseBenchArgs(argc, argv));
  for (const char* workload : kWorkloads) {
    for (const Variant& variant : kVariants) {
      RunOptions options;
      options.warmup = Duration::Seconds(30);  // Short warmup: ordering stars here.
      options.hotness_spec = variant.hotness_spec;
      Scenario scenario;
      char label[64];
      std::snprintf(label, sizeof(label), "%s/%s", workload, variant.name);
      scenario.label = label;
      scenario.spec = Workloads::Get(workload);
      scenario.engine = variant.engine;
      scenario.options = options;
      set.Add(std::move(scenario));
    }
  }
  set.Run();

  Table table({"workload", "variant", "time(s)", "down(s)", "traffic(GiB)", "iters",
               "deferred", "avoided", "verified"});
  int wire_wins = 0;
  int downtime_ok = 0;
  size_t i = 0;
  for (const char* workload : kWorkloads) {
    int64_t wire_off = 0;
    Duration down_off = Duration::Zero();
    for (const Variant& variant : kVariants) {
      const RunOutput& out = set.out(i++);
      const MigrationResult& r = out.result;
      if (std::string(variant.name) == "xen/off") {
        wire_off = r.total_wire_bytes;
        down_off = r.downtime.Total();
      } else if (std::string(variant.name) == "xen/hot") {
        if (r.total_wire_bytes < wire_off) {
          ++wire_wins;
        }
        if (r.downtime.Total() <= down_off + kDeferBudget) {
          ++downtime_ok;
        }
      }
      table.Row()
          .Cell(workload)
          .Cell(variant.name)
          .Cell(r.total_time.ToSecondsF(), 1)
          .Cell(r.downtime.Total().ToSecondsF(), 3)
          .Cell(GiBOf(r.total_wire_bytes), 2)
          .Cell(static_cast<int64_t>(r.iteration_count()))
          .Cell(r.pages_deferred_hot)
          .Cell(r.resend_pages_avoided)
          .Cell(r.verification.ok ? "yes" : "NO");
    }
  }
  table.Print(std::cout);

  std::printf("\nshape check: the xen/off rows reproduce the pre-hotness engine bit-for-bit\n"
              "(the golden in tests/hotness_test.cc pins this). xen/hot re-sends each hot\n"
              "page at most once: the parked set transfers inside the pause, bounded to\n"
              "the defer budget's worth of wire time. javmm/off shows how close generic\n"
              "hotness scoring gets to the LKM's application-provided bitmap.\n");

  int exit_code = set.ExitCode();
  const int n = static_cast<int>(std::size(kWorkloads));
  std::printf("\nhotness-on wire-byte wins: %d of %d (need >= 6); downtime within "
              "budget: %d of %d\n",
              wire_wins, n, downtime_ok, n);
  if (wire_wins < 6) {
    std::fprintf(stderr, "FAILED: hotness reduced wire bytes on only %d of %d workloads\n",
                 wire_wins, n);
    exit_code = exit_code == 0 ? 1 : exit_code;
  }
  if (downtime_ok != n) {
    std::fprintf(stderr, "FAILED: hotness blew the defer budget's downtime bound on %d "
                 "workloads\n", n - downtime_ok);
    exit_code = exit_code == 0 ? 1 : exit_code;
  }
  return exit_code;
}
