// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Table 2 + Figure 10: migration performance for the three workload-category
// representatives (derby = cat 1, crypto = cat 2, scimark = cat 3), Xen vs
// JAVMM, >= 3 runs each with 90% confidence intervals.
// Paper anchors: JAVMM cuts derby's time by 82%, traffic by 84%, downtime by
// 83%; crypto 69%/72%/73%; scimark is a wash on time/traffic and ~10% WORSE
// on downtime (the enforced GC does not pay off for long-lived objects).
// Also reports the §5.3 CPU-and-memory-overhead numbers.

#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

int main() {
  constexpr int kSeeds = 3;
  const std::vector<WorkloadSpec> specs = Workloads::CategoryRepresentatives();

  std::printf("=== Table 2: experimental settings (observed when migrated) ===\n");
  Table settings({"workload", "max young(MiB)", "young@migration(MiB)", "old@migration(MiB)"});
  struct Agg {
    MetricSummary xen;
    MetricSummary javmm;
    int64_t lkm_bitmap = 0;
    int64_t lkm_cache = 0;
    bool verified = true;
  };
  std::vector<Agg> aggs(specs.size());

  for (size_t w = 0; w < specs.size(); ++w) {
    Summary young;
    Summary old_gen;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      for (const bool assisted : {false, true}) {
        RunOptions options;
        options.seed = static_cast<uint64_t>(seed);
        const RunOutput out = RunMigrationExperiment(specs[w], assisted, options);
        (assisted ? aggs[w].javmm : aggs[w].xen).Add(out.result);
        aggs[w].verified = aggs[w].verified && RunClean(out.result);
        if (assisted) {
          young.Add(MiBOf(out.young_at_migration));
          old_gen.Add(MiBOf(out.old_at_migration));
          aggs[w].lkm_bitmap = out.result.lkm_bitmap_bytes;
          aggs[w].lkm_cache = std::max(aggs[w].lkm_cache, out.result.lkm_pfn_cache_bytes);
        }
      }
    }
    settings.Row()
        .Cell(specs[w].name)
        .Cell(MiBOf(specs[w].heap.young_max_bytes), 0)
        .Cell(young.Mean(), 0)
        .Cell(old_gen.Mean(), 0);
  }
  settings.Print(std::cout);
  std::printf("(paper Table 2: derby 1024/1024/259, crypto 1024/456/18, "
              "scimark 1024/128/486 MiB)\n\n");

  std::printf("=== Figure 10(a): total migration time (mean ± 90%% CI over %d runs) ===\n",
              kSeeds);
  Table time_table({"workload", "Xen(s)", "JAVMM(s)", "reduction", "Xen runs", "JAVMM runs"});
  for (size_t w = 0; w < specs.size(); ++w) {
    time_table.Row()
        .Cell(specs[w].name)
        .Cell(aggs[w].xen.time_s.ToString())
        .Cell(aggs[w].javmm.time_s.ToString())
        .Cell(ReductionPct(aggs[w].xen.time_s.Mean(), aggs[w].javmm.time_s.Mean()), 0)
        .Cell(aggs[w].xen.CountsLabel())
        .Cell(aggs[w].javmm.CountsLabel());
  }
  time_table.Print(std::cout);
  std::printf("(paper: derby -82%%, crypto -69%%, scimark ~comparable)\n\n");

  std::printf("=== Figure 10(b): total migration traffic ===\n");
  Table traffic({"workload", "Xen(GiB)", "JAVMM(GiB)", "reduction"});
  for (size_t w = 0; w < specs.size(); ++w) {
    traffic.Row()
        .Cell(specs[w].name)
        .Cell(aggs[w].xen.traffic_gib.ToString())
        .Cell(aggs[w].javmm.traffic_gib.ToString())
        .Cell(ReductionPct(aggs[w].xen.traffic_gib.Mean(), aggs[w].javmm.traffic_gib.Mean()),
              0);
  }
  traffic.Print(std::cout);
  std::printf("(paper: derby -84%%, crypto -72%%, scimark -10%%; JAVMM sends less than the "
              "VM size for derby & crypto)\n\n");

  std::printf("=== Figure 10(c): workload downtime due to migration ===\n");
  Table downtime({"workload", "Xen(s)", "JAVMM(s)", "change"});
  for (size_t w = 0; w < specs.size(); ++w) {
    downtime.Row()
        .Cell(specs[w].name)
        .Cell(aggs[w].xen.downtime_s.ToString())
        .Cell(aggs[w].javmm.downtime_s.ToString())
        .Cell(ReductionPct(aggs[w].xen.downtime_s.Mean(), aggs[w].javmm.downtime_s.Mean()),
              0);
  }
  downtime.Print(std::cout);
  std::printf("(paper: derby -83%%, crypto -73%%, scimark +10%% -- JAVMM slightly WORSE for\n"
              " the long-lived-object workload, whose survivors must be sent in the last\n"
              " iteration after a fruitless enforced GC)\n\n");

  std::printf("=== §5.3 overheads ===\n");
  Table overheads({"workload", "Xen CPU(s)", "JAVMM CPU(s)", "CPU reduction", "bitmap",
                   "pfn cache(peak)"});
  bool all_ok = true;
  for (size_t w = 0; w < specs.size(); ++w) {
    overheads.Row()
        .Cell(specs[w].name)
        .Cell(aggs[w].xen.cpu_s.ToString())
        .Cell(aggs[w].javmm.cpu_s.ToString())
        .Cell(ReductionPct(aggs[w].xen.cpu_s.Mean(), aggs[w].javmm.cpu_s.Mean()), 0)
        .Cell(FormatBytes(aggs[w].lkm_bitmap))
        .Cell(FormatBytes(aggs[w].lkm_cache));
    all_ok = all_ok && aggs[w].verified;
  }
  overheads.Print(std::cout);
  std::printf("(paper: up to 84%% less CPU; at most ~1 MB for bitmap + PFN cache)\n");
  std::printf("all runs verified: %s\n", all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
