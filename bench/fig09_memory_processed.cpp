// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Figure 9: amount of memory processed per iteration when migrating the
// compiler VM -- transferred vs skipped-already-dirtied vs skipped-young-gen.
// Paper anchors: both engines skip ~500 MB of already-dirtied pages in the
// first iteration; in the second iteration JAVMM sends only 64 MB while Xen
// sends >200 MB; JAVMM's 4th-10th iterations each process <2 MB of dirty
// memory.

#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

namespace {

void PrintProcessed(const char* engine, const MigrationResult& r) {
  std::printf("--- %s ---\n", engine);
  Table table({"iter", "transferred(MiB)", "skipped-dirtied(MiB)", "skipped-younggen(MiB)"});
  for (const IterationRecord& it : r.iterations) {
    table.Row()
        .Cell(static_cast<int64_t>(it.index))
        .Cell(PagesToMiB(it.pages_sent), 1)
        .Cell(PagesToMiB(it.pages_skipped_dirty), 1)
        .Cell(PagesToMiB(it.pages_skipped_bitmap), 1);
  }
  table.Print(std::cout);
  std::printf("totals: transferred %.2f GiB, skipped-dirtied %.2f GiB, "
              "skipped-younggen %.2f GiB\n\n",
              PagesToMiB(r.pages_sent) / 1024, PagesToMiB(r.pages_skipped_dirty) / 1024,
              PagesToMiB(r.pages_skipped_bitmap) / 1024);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Figure 9: memory processed per iteration, compiler (young cap 512 MiB) ===\n\n");
  const WorkloadSpec spec = Workloads::WithYoungCap(Workloads::Get("compiler"), 512 * kMiB);

  ExperimentSet set(ParseBenchArgs(argc, argv));
  set.Add("compiler/Xen", spec, /*assisted=*/false);
  set.Add("compiler/JAVMM", spec, /*assisted=*/true);
  set.Run();
  const RunOutput& xen = set.out(0);
  const RunOutput& javmm_run = set.out(1);

  PrintProcessed("Xen", xen.result);
  PrintProcessed("JAVMM", javmm_run.result);

  const auto& x2 = xen.result.iterations.size() > 1 ? xen.result.iterations[1] : IterationRecord{};
  const auto& j2 =
      javmm_run.result.iterations.size() > 1 ? javmm_run.result.iterations[1] : IterationRecord{};
  std::printf("shape check (iteration 2): Xen transfers %.0f MiB vs JAVMM %.0f MiB "
              "(paper: >200 MB vs 64 MB)\n",
              PagesToMiB(x2.pages_sent), PagesToMiB(j2.pages_sent));
  std::printf("shape check (iteration 1): both skip already-dirtied pages "
              "(Xen %.0f MiB, JAVMM %.0f MiB; paper ~500 MB), and JAVMM additionally\n"
              "skips the young generation every iteration.\n",
              PagesToMiB(xen.result.iterations[0].pages_skipped_dirty),
              PagesToMiB(javmm_run.result.iterations[0].pages_skipped_dirty +
                         javmm_run.result.iterations[0].pages_skipped_bitmap));
  return set.ExitCode();
}
