// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Ablation (§3.3.4): the implemented incremental bitmap-update design versus
// the paper's deferred "alternative approach" (final re-walk of all skip-over
// areas, no shrink notifications), with and without the parallel final update
// the authors say they are exploring. The paper deferred the re-walk because
// "walking the page tables of all the skip-over areas slows down the
// completion of the final bitmap update, during which the applications may
// be paused" -- this bench quantifies exactly that.

#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

int main() {
  std::printf("=== Ablation: final-bitmap-update strategies (§3.3.4), derby ===\n\n");
  struct Case {
    const char* name;
    BitmapUpdateMode mode;
    int threads;
  };
  const Case cases[] = {
      {"incremental (paper's design)", BitmapUpdateMode::kIncremental, 1},
      {"final re-walk (alternative)", BitmapUpdateMode::kFinalRewalk, 1},
      {"final re-walk, 4 threads", BitmapUpdateMode::kFinalRewalk, 4},
      {"final re-walk, 16 threads", BitmapUpdateMode::kFinalRewalk, 16},
  };
  Table table({"strategy", "final update", "downtime(s)", "time(s)", "traffic(GiB)",
               "verified"});
  for (const Case& c : cases) {
    RunOptions options;
    options.seed = 3;
    options.lab.migration.application_assisted = true;
    options.lab.lkm.update_mode = c.mode;
    options.lab.lkm.final_update_threads = c.threads;
    const RunOutput out = RunMigrationExperiment(Workloads::Get("derby"), true, options);
    table.Row()
        .Cell(c.name)
        .Cell(out.result.downtime.final_bitmap_update.ToString())
        .Cell(out.result.downtime.Total().ToSecondsF(), 2)
        .Cell(out.result.total_time.ToSecondsF(), 1)
        .Cell(GiBOf(out.result.total_wire_bytes), 2)
        .Cell(out.result.verification.ok ? "yes" : "NO");
  }
  table.Print(std::cout);
  std::printf("\nshape check: the incremental design finishes its final update in tens of\n"
              "microseconds (paper: <300 us); the re-walk pays a page-table walk over the\n"
              "whole 1 GiB young generation inside the suspension window, and parallelism\n"
              "divides that cost back down -- supporting both the paper's deferral and its\n"
              "planned acceleration. Correctness holds in every mode (the re-walk also\n"
              "covers the PFN-remap case the incremental design assumes absent).\n");
  return 0;
}
