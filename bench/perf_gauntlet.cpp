// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Perf gauntlet: drives the four hottest exhibit shapes (runner scaling,
// fault matrix, channel sweep, hotness sweep) and reports two kinds of
// numbers per exhibit:
//
//   * deterministic PerfCounters (src/base/perf.h) summed over the
//     exhibit's runs -- bit-identical across machines and --jobs values,
//     so CI can diff them against a checked-in baseline and fail on
//     regressions;
//   * wall-clock per exhibit -- machine-dependent, reported for trend
//     watching but never gated on.
//
// Flags:
//   --jobs=N                 worker pool size (0 = hardware threads)
//   --json=FILE              one JSON line per exhibit (BENCH_perf.json)
//   --baseline=FILE          diff counters against a baseline; any counter
//                            more than 10% above baseline fails the run
//   --write-baseline=FILE    write the current counters as a new baseline
//
// Baseline update policy (DESIGN.md §14): regenerate with --write-baseline
// only in the same change that intentionally alters instrumented-site
// behaviour, and say why in the commit message.
//
// Beyond the baseline diff, the gauntlet enforces two structural
// invariants that hold even on a fresh baseline:
//
//   * buffer reuse: on at least three of the four exhibits, instrumented
//     hot-path operations must land in already-acquired capacity at least
//     3x as often as they grow a buffer (buffer_reuses >= 3 * allocations).
//     A regression that reintroduces per-round buffer churn trips this.
//   * run coalescing: on the sweep-heavy exhibits (runner_scaling,
//     hotness_sweep -- dominated by boot populates and cyclic old-gen
//     sweeps), the guest store path must write at least 8 pages per
//     page-table probe (pte_lookups * 8 <= pages_written). A regression
//     that reverts WriteRange to per-page Lookup trips this (DESIGN.md
//     §15); the fault-heavy exhibits stay ungated because random
//     single-page touches legitimately probe once per page.

// lint: banned-call-ok (wall-clock here profiles the host, never simulated results)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/base/perf.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

namespace {

struct GauntletArgs {
  int jobs = 1;
  std::string json_path;
  std::string baseline_path;
  std::string write_baseline_path;
};

GauntletArgs ParseGauntletArgs(int argc, char** argv) {
  GauntletArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      args.jobs = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      args.json_path = arg + 7;
    } else if (std::strncmp(arg, "--baseline=", 11) == 0) {
      args.baseline_path = arg + 11;
    } else if (std::strncmp(arg, "--write-baseline=", 17) == 0) {
      args.write_baseline_path = arg + 17;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (supported: --jobs=N, --json=FILE, "
                   "--baseline=FILE, --write-baseline=FILE)\n",
                   arg);
      std::exit(2);
    }
  }
  return args;
}

struct ExhibitResult {
  std::string name;
  int64_t runs = 0;
  int64_t failures = 0;
  int64_t wall_ms = 0;  // Host wall-clock; informational only.
  PerfCounters counters;
};

// ---- Exhibit scenario builders ---------------------------------------------
//
// Each builder reproduces the scenario shape of its namesake exhibit at
// gauntlet scale: large enough that the counters exercise every hot path
// (harvest loops, burst SoA, channel sharding, hotness deferral), small
// enough that the whole gauntlet stays in CI-smoke territory.

Scenario Fast(EngineKind kind, std::string label) {
  Scenario scenario;
  scenario.label = std::move(label);
  scenario.spec = Workloads::Get("crypto");
  scenario.engine = kind;
  scenario.options.warmup = Duration::Seconds(10);
  scenario.options.cooldown = Duration::Seconds(5);
  return scenario;
}

// Runner scaling shape: the crypto sweep of micro_runner_scaling, 4 seeds
// per engine. Stresses the whole-engine path repeatedly with distinct RNG
// streams.
std::vector<Scenario> RunnerScalingScenarios() {
  std::vector<Scenario> scenarios;
  for (const EngineKind kind : {EngineKind::kXenPrecopy, EngineKind::kJavmm}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      Scenario scenario =
          Fast(kind, std::string(EngineKindName(kind)) + "/s" + std::to_string(seed));
      scenario.options.seed = seed;
      scenarios.push_back(std::move(scenario));
    }
  }
  return scenarios;
}

// Fault matrix shape: the 6-regime x 4-engine golden battery from
// abl_fault_matrix / the channel and hotness golden pins. Stresses the
// fault/retry/backoff paths of all four engines.
std::vector<Scenario> FaultMatrixScenarios() {
  struct Regime {
    const char* name;
    const char* spec;
  };
  const Regime kRegimes[] = {
      {"healthy", ""},
      {"bw-collapse", "bw:0s-60s@0.3"},
      {"lossy-ctl", "loss:0.4"},
      {"outage", "out:1s-2s"},
      {"lat-spike", "lat:0s-30s+20ms;loss:0.2"},
      {"combined", "bw:0s-60s@0.5;loss:0.4;out:1s-2500ms"},
  };
  const EngineKind kEngines[] = {EngineKind::kXenPrecopy, EngineKind::kJavmm,
                                 EngineKind::kStopAndCopy, EngineKind::kPostcopy};
  std::vector<Scenario> scenarios;
  for (const Regime& regime : kRegimes) {
    for (const EngineKind kind : kEngines) {
      Scenario scenario =
          Fast(kind, std::string(regime.name) + "/" + EngineKindName(kind));
      scenario.options.fault_spec = regime.spec;
      scenarios.push_back(std::move(scenario));
    }
  }
  return scenarios;
}

// Channel sweep shape: striped data plane at 1/2/4 sub-links, healthy and
// with a disturbance pinned to sub-link 1. Stresses ChannelSet::Shard and
// the per-channel accounting.
std::vector<Scenario> ChannelSweepScenarios() {
  struct Regime {
    const char* name;
    const char* single_spec;
    const char* striped_spec;
  };
  const Regime kRegimes[] = {
      {"healthy", "", ""},
      {"outage", "out:2s-3s", "ch1:out:2s-3s"},
  };
  std::vector<Scenario> scenarios;
  for (const Regime& regime : kRegimes) {
    for (const int channels : {1, 2, 4}) {
      for (const EngineKind kind : {EngineKind::kJavmm, EngineKind::kPostcopy}) {
        Scenario scenario =
            Fast(kind, std::string(regime.name) + "/" + std::to_string(channels) + "ch/" +
                           EngineKindName(kind));
        scenario.options.channels = channels;
        scenario.options.fault_spec = channels > 1 ? regime.striped_spec : regime.single_spec;
        scenarios.push_back(std::move(scenario));
      }
    }
  }
  return scenarios;
}

// Hotness sweep shape: ordering off vs on across the three category
// representatives. Stresses the hotness scoring/deferral path and its
// tracker-reuse across engine iterations.
std::vector<Scenario> HotnessSweepScenarios() {
  constexpr char kHotnessSpec[] = "rate:1,score:8,decay:1,budget:500ms";
  std::vector<Scenario> scenarios;
  for (const char* workload : {"derby", "crypto", "scimark"}) {
    for (const char* spec : {"off", kHotnessSpec}) {
      Scenario scenario;
      scenario.label = std::string(workload) + "/" +
                       (std::strcmp(spec, "off") == 0 ? "off" : "hot");
      scenario.spec = Workloads::Get(workload);
      scenario.engine = EngineKind::kXenPrecopy;
      scenario.options.warmup = Duration::Seconds(10);
      scenario.options.cooldown = Duration::Seconds(5);
      scenario.options.hotness_spec = spec;
      scenarios.push_back(std::move(scenario));
    }
  }
  return scenarios;
}

// ---- Execution -------------------------------------------------------------

ExhibitResult RunExhibit(const std::string& name, const std::vector<Scenario>& scenarios,
                         int jobs) {
  ExhibitResult out;
  out.name = name;
  out.runs = static_cast<int64_t>(scenarios.size());
  // lint: banned-call-ok (wall-clock profiles the host, never simulated results)
  const auto wall_start = std::chrono::steady_clock::now();
  const RunReport report = ScenarioRunner(jobs).RunAll(scenarios);
  // lint: banned-call-ok (wall-clock profiles the host, never simulated results)
  const auto wall_end = std::chrono::steady_clock::now();
  out.wall_ms = static_cast<int64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(wall_end - wall_start).count());
  for (const RunRecord& rec : report.runs) {
    WarnOnFailure(rec);
  }
  out.failures = report.failure_count();
  out.counters = report.TotalPerf();
  return out;
}

std::string ExhibitJsonLine(const ExhibitResult& e) {
  std::ostringstream os;
  os << "{\"exhibit\":\"" << e.name << "\",\"runs\":" << e.runs
     << ",\"failures\":" << e.failures << ",\"wall_ms\":" << e.wall_ms
     << ",\"counters\":" << e.counters.ToJson() << "}";
  return os.str();
}

// ---- Baseline file ---------------------------------------------------------
//
// bench/perf_baseline.json: one line per exhibit, deterministic fields only
// (no wall-clock, which would churn on every machine):
//
//   {"exhibit":"fault_matrix","counters":{"allocations":...,...}}

struct BaselineEntry {
  std::string exhibit;
  PerfCounters counters;
};

bool ParseBaselineLine(const std::string& line, BaselineEntry* out, std::string* error) {
  const std::string kExhibitKey = "\"exhibit\":\"";
  const size_t name_at = line.find(kExhibitKey);
  if (name_at == std::string::npos) {
    *error = "no \"exhibit\" key";
    return false;
  }
  const size_t name_begin = name_at + kExhibitKey.size();
  const size_t name_end = line.find('"', name_begin);
  if (name_end == std::string::npos) {
    *error = "unterminated exhibit name";
    return false;
  }
  out->exhibit = line.substr(name_begin, name_end - name_begin);
  const std::string kCountersKey = "\"counters\":";
  const size_t counters_at = line.find(kCountersKey, name_end);
  if (counters_at == std::string::npos) {
    *error = "no \"counters\" key";
    return false;
  }
  // The counters object is flat, so the first '}' after its '{' closes it.
  const size_t obj_begin = line.find('{', counters_at);
  const size_t obj_end = line.find('}', counters_at);
  if (obj_begin == std::string::npos || obj_end == std::string::npos || obj_end < obj_begin) {
    *error = "malformed counters object";
    return false;
  }
  return PerfCounters::FromJson(line.substr(obj_begin, obj_end - obj_begin + 1), &out->counters,
                                error);
}

bool LoadBaseline(const std::string& path, std::vector<BaselineEntry>* out) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "ERROR: cannot read baseline %s\n", path.c_str());
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    BaselineEntry entry;
    std::string error;
    if (!ParseBaselineLine(line, &entry, &error)) {
      std::fprintf(stderr, "ERROR: %s:%d: %s\n", path.c_str(), lineno, error.c_str());
      return false;
    }
    out->push_back(std::move(entry));
  }
  return true;
}

// Returns the number of regressed (exhibit, counter) pairs. A counter
// regresses when it exceeds its baseline by more than 10%, in exact integer
// arithmetic: cur * 10 > base * 11. Counters that *drop* never fail -- an
// improvement just means the baseline should be refreshed.
int DiffAgainstBaseline(const std::vector<BaselineEntry>& baseline,
                        const std::vector<ExhibitResult>& results) {
  int regressions = 0;
  for (const BaselineEntry& base : baseline) {
    const ExhibitResult* cur = nullptr;
    for (const ExhibitResult& e : results) {
      if (e.name == base.exhibit) {
        cur = &e;
        break;
      }
    }
    if (cur == nullptr) {
      std::fprintf(stderr, "REGRESSION: baseline exhibit %s was not run\n",
                   base.exhibit.c_str());
      ++regressions;
      continue;
    }
    for (const std::string& name : PerfCounterNames()) {
      const int64_t was = PerfCounterValue(base.counters, name);
      const int64_t now = PerfCounterValue(cur->counters, name);
      if (now * 10 > was * 11) {
        std::fprintf(stderr, "REGRESSION: %s.%s: %lld -> %lld (>10%% over baseline)\n",
                     base.exhibit.c_str(), name.c_str(), static_cast<long long>(was),
                     static_cast<long long>(now));
        ++regressions;
      }
    }
  }
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  const GauntletArgs args = ParseGauntletArgs(argc, argv);
  std::printf("=== Perf gauntlet: deterministic counters + wall-clock, jobs=%d ===\n\n",
              args.jobs);

  std::vector<ExhibitResult> results;
  results.push_back(RunExhibit("runner_scaling", RunnerScalingScenarios(), args.jobs));
  results.push_back(RunExhibit("fault_matrix", FaultMatrixScenarios(), args.jobs));
  results.push_back(RunExhibit("channel_sweep", ChannelSweepScenarios(), args.jobs));
  results.push_back(RunExhibit("hotness_sweep", HotnessSweepScenarios(), args.jobs));

  // Sweep-heavy exhibits carry the run-coalescing gate; see the header
  // comment for why the fault-heavy two are exempt.
  const std::set<std::string> kSweepHeavy = {"runner_scaling", "hotness_sweep"};

  Table table({"exhibit", "runs", "fail", "wall(ms)", "allocs", "reuses", "reuse/alloc",
               "harvests", "peeks", "pg/pte"});
  int64_t run_failures = 0;
  int reuse_ok = 0;
  int coalesce_failures = 0;
  for (const ExhibitResult& e : results) {
    run_failures += e.failures;
    const double ratio = e.counters.allocations > 0
                             ? static_cast<double>(e.counters.buffer_reuses) /
                                   static_cast<double>(e.counters.allocations)
                             : 0.0;
    if (e.counters.buffer_reuses >= 3 * e.counters.allocations) {
      ++reuse_ok;
    }
    const double pages_per_probe =
        e.counters.pte_lookups > 0 ? static_cast<double>(e.counters.pages_written) /
                                         static_cast<double>(e.counters.pte_lookups)
                                   : 0.0;
    if (kSweepHeavy.count(e.name) != 0 &&
        e.counters.pte_lookups * 8 > e.counters.pages_written) {
      std::fprintf(stderr, "REGRESSION: %s: pte_lookups*8 > pages_written (%.2f pages/probe)\n",
                   e.name.c_str(), pages_per_probe);
      ++coalesce_failures;
    }
    table.Row()
        .Cell(e.name)
        .Cell(e.runs)
        .Cell(e.failures)
        .Cell(e.wall_ms)
        .Cell(e.counters.allocations)
        .Cell(e.counters.buffer_reuses)
        .Cell(ratio, 1)
        .Cell(e.counters.harvests)
        .Cell(e.counters.page_peeks)
        .Cell(pages_per_probe, 1);
  }
  table.Print(std::cout);
  std::printf("\nbuffer-reuse gate (reuses >= 3x allocations): %d/4 exhibits (need >= 3)\n",
              reuse_ok);
  std::printf("run-coalescing gate (pages_written >= 8x pte_lookups): %d/%d sweep-heavy "
              "exhibits\n",
              static_cast<int>(kSweepHeavy.size()) - coalesce_failures,
              static_cast<int>(kSweepHeavy.size()));

  if (!args.json_path.empty()) {
    std::ofstream os(args.json_path);
    if (!os) {
      std::fprintf(stderr, "ERROR: cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    for (const ExhibitResult& e : results) {
      os << ExhibitJsonLine(e) << "\n";
    }
  }

  if (!args.write_baseline_path.empty()) {
    std::ofstream os(args.write_baseline_path);
    if (!os) {
      std::fprintf(stderr, "ERROR: cannot write %s\n", args.write_baseline_path.c_str());
      return 1;
    }
    for (const ExhibitResult& e : results) {
      os << "{\"exhibit\":\"" << e.name << "\",\"counters\":" << e.counters.ToJson() << "}\n";
    }
    std::printf("baseline written to %s\n", args.write_baseline_path.c_str());
  }

  int regressions = 0;
  if (!args.baseline_path.empty()) {
    std::vector<BaselineEntry> baseline;
    if (!LoadBaseline(args.baseline_path, &baseline)) {
      return 1;
    }
    regressions = DiffAgainstBaseline(baseline, results);
    if (regressions == 0) {
      std::printf("baseline %s: all counters within 10%%\n", args.baseline_path.c_str());
    }
  }

  if (run_failures > 0) {
    std::fprintf(stderr, "FAILED: %lld run(s) failed\n", static_cast<long long>(run_failures));
    return 1;
  }
  if (regressions > 0) {
    std::fprintf(stderr, "FAILED: %d counter regression(s) against baseline\n", regressions);
    return 1;
  }
  if (reuse_ok < 3) {
    std::fprintf(stderr, "FAILED: buffer-reuse gate held on only %d/4 exhibits\n", reuse_ok);
    return 1;
  }
  if (coalesce_failures > 0) {
    std::fprintf(stderr, "FAILED: run-coalescing gate failed on %d sweep-heavy exhibit(s)\n",
                 coalesce_failures);
    return 1;
  }
  return 0;
}
