// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Runner scaling check: a 16-seed sweep (8 per engine) through the
// ScenarioRunner. Run it twice to verify the determinism contract end to end:
//
//   bench/micro_runner_scaling --jobs=1 --json=serial.jsonl
//   bench/micro_runner_scaling --jobs=8 --json=parallel.jsonl
//   diff serial.jsonl parallel.jsonl        # must be empty
//
// The JSON-lines export carries only exact integers, so any scheduling
// dependence shows up as a diff. The printed wall-clock gives the speedup on
// the current host (the sweep is embarrassingly parallel; on an 8-core host
// --jobs=8 should be >= 3x faster than --jobs=1).

// lint: banned-call-ok (this micro-bench measures real host wall-clock speedup of the pool)
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf("=== Runner scaling: 16-run crypto sweep, jobs=%d ===\n\n", args.jobs);

  ExperimentSet set(args);
  for (const bool assisted : {false, true}) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      RunOptions options;
      options.seed = seed;
      options.warmup = Duration::Seconds(60);
      set.Add("crypto/" + EngineName(assisted) + "/s" + std::to_string(seed),
              Workloads::Get("crypto"), assisted, options);
    }
  }

  // lint: banned-call-ok (wall-clock here measures host speedup, never simulated results)
  const auto wall_start = std::chrono::steady_clock::now();
  const RunReport& report = set.Run();
  // lint: banned-call-ok (wall-clock here measures host speedup, never simulated results)
  const auto wall_end = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(wall_end - wall_start).count();

  MetricSummary xen;
  MetricSummary javmm_agg;
  for (size_t i = 0; i < report.runs.size(); ++i) {
    (i < 8 ? xen : javmm_agg).Add(set.result(i));
  }
  Table table({"engine", "runs", "time(s)", "traffic(GiB)", "downtime(s)"});
  table.Row()
      .Cell("Xen")
      .Cell(xen.CountsLabel())
      .Cell(xen.time_s.ToString())
      .Cell(xen.traffic_gib.ToString())
      .Cell(xen.downtime_s.ToString());
  table.Row()
      .Cell("JAVMM")
      .Cell(javmm_agg.CountsLabel())
      .Cell(javmm_agg.time_s.ToString())
      .Cell(javmm_agg.traffic_gib.ToString())
      .Cell(javmm_agg.downtime_s.ToString());
  table.Print(std::cout);

  std::printf("\n16 runs in %.2fs wall-clock with --jobs=%d\n", wall_s, args.jobs);
  return set.ExitCode();
}
