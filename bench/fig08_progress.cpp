// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Figure 8: progress of migrating a VM running the compiler workload
// (512 MiB young generation, Table 3) -- per-iteration boxes whose width is
// duration and area is traffic. Paper: Xen needs 30 iterations / 58 s /
// 6.1 GB; JAVMM finishes in 11 iterations / 17 s / 1.6 GB, with the second-
// last iteration spent waiting for the safepoint (0.7 s) and the enforced
// minor GC (0.1 s).

#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

namespace {

void PrintProgress(const char* engine, const RunOutput& out) {
  const MigrationResult& r = out.result;
  std::printf("--- %s ---\n", engine);
  Table table({"iter", "start(s)", "duration(s)", "traffic(MiB)", "box"});
  double start = 0;
  for (const IterationRecord& it : r.iterations) {
    table.Row()
        .Cell(static_cast<int64_t>(it.index))
        .Cell(start, 2)
        .Cell(it.duration.ToSecondsF(), 2)
        .Cell(MiBOf(it.wire_bytes), 1)
        .Cell(AsciiBar(MiBOf(it.wire_bytes), 1600, 32));
    start += it.duration.ToSecondsF();
  }
  table.Print(std::cout);
  std::printf("total: %.1f s, %.2f GiB, %d iterations, downtime %.2f s "
              "(safepoint wait %.2f s + GC %.2f s excluded from app stall only "
              "partially; see EXPERIMENTS.md)\n\n",
              r.total_time.ToSecondsF(), GiBOf(r.total_wire_bytes), r.iteration_count(),
              r.downtime.Total().ToSecondsF(), r.downtime.safepoint_wait.ToSecondsF(),
              r.downtime.enforced_gc.ToSecondsF());
}

}  // namespace

int main() {
  std::printf("=== Figure 8: migration progress, compiler workload (young cap 512 MiB) ===\n");
  std::printf("paper: Xen 58 s / 6.1 GB / 30 iters; JAVMM 17 s / 1.6 GB / 11 iters\n\n");

  const WorkloadSpec spec = Workloads::WithYoungCap(Workloads::Get("compiler"), 512 * kMiB);
  const RunOutput xen = RunMigrationExperiment(spec, /*assisted=*/false);
  const RunOutput javmm_run = RunMigrationExperiment(spec, /*assisted=*/true);

  PrintProgress("Xen", xen);
  PrintProgress("JAVMM", javmm_run);

  std::printf("shape check: JAVMM's iterations shrink geometrically and it stops-and-copies\n"
              "early, while Xen's iterations stay wide until an iteration/volume cap.\n");
  std::printf("  time  %5.1fs vs %5.1fs  (%.0f%% less)\n", xen.result.total_time.ToSecondsF(),
              javmm_run.result.total_time.ToSecondsF(),
              ReductionPct(xen.result.total_time.ToSecondsF(),
                           javmm_run.result.total_time.ToSecondsF()));
  std::printf("  traffic %4.2fGiB vs %4.2fGiB (%.0f%% less)\n",
              GiBOf(xen.result.total_wire_bytes), GiBOf(javmm_run.result.total_wire_bytes),
              ReductionPct(GiBOf(xen.result.total_wire_bytes),
                           GiBOf(javmm_run.result.total_wire_bytes)));
  return (xen.result.verification.ok && javmm_run.result.verification.ok) ? 0 : 1;
}
