// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Micro-benchmarks (google-benchmark) for the hot substrate operations the
// migration path leans on: bitmap scans, dirty-log harvests, page-table
// walks, VA-range-set algebra, and the PRNG. These are the operations whose
// costs the paper's final-bitmap-update measurement (<300 us) bounds.

#include <benchmark/benchmark.h>

#include "src/base/rng.h"
#include "src/guest/va_range_set.h"
#include "src/mem/address_space.h"
#include "src/mem/bitmap.h"
#include "src/mem/dirty_log.h"
#include "src/mem/physical_memory.h"

namespace javmm {
namespace {

void BM_BitmapSetClear(benchmark::State& state) {
  PageBitmap bm(524288);  // 2 GiB of 4 KiB pages.
  int64_t i = 0;
  for (auto _ : state) {
    bm.Set(i);
    bm.Clear(i);
    i = (i + 977) % 524288;
  }
}
BENCHMARK(BM_BitmapSetClear);

void BM_BitmapCount(benchmark::State& state) {
  PageBitmap bm(524288);
  Rng rng(1);
  for (int i = 0; i < 50000; ++i) {
    bm.Set(static_cast<int64_t>(rng.NextBounded(524288)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bm.Count());
  }
}
BENCHMARK(BM_BitmapCount);

void BM_BitmapCollectSetBits(benchmark::State& state) {
  PageBitmap bm(524288);
  Rng rng(2);
  for (int64_t i = 0; i < state.range(0); ++i) {
    bm.Set(static_cast<int64_t>(rng.NextBounded(524288)));
  }
  for (auto _ : state) {
    std::vector<int64_t> out;
    bm.CollectSetBits(&out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BitmapCollectSetBits)->Arg(1000)->Arg(50000)->Arg(500000);

void BM_DirtyLogMarkHarvest(benchmark::State& state) {
  DirtyLog log(524288);
  Rng rng(3);
  std::vector<Pfn> harvest;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      log.Mark(static_cast<Pfn>(rng.NextBounded(524288)));
    }
    log.CollectAndClear(&harvest);
    benchmark::DoNotOptimize(harvest);
  }
}
BENCHMARK(BM_DirtyLogMarkHarvest);

void BM_PageTableWalk(benchmark::State& state) {
  GuestPhysicalMemory memory(2 * kGiB);
  AddressSpace space(&memory);
  const int64_t bytes = state.range(0) * kPageSize;
  const VaRange region = space.ReserveVa(bytes);
  CHECK(space.CommitRange(region.begin, bytes));
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.page_table().WalkRange(region));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PageTableWalk)->Arg(256)->Arg(4096)->Arg(262144);

void BM_AddressSpaceWrite(benchmark::State& state) {
  GuestPhysicalMemory memory(256 * kMiB);
  AddressSpace space(&memory);
  const VaRange region = space.ReserveVa(64 * kMiB);
  CHECK(space.CommitRange(region.begin, region.bytes()));
  uint64_t offset = 0;
  for (auto _ : state) {
    space.Write(region.begin + offset, 64 * kKiB);
    offset = (offset + 64 * kKiB) % (32 * static_cast<uint64_t>(kMiB));
  }
  state.SetBytesProcessed(state.iterations() * 64 * kKiB);
}
BENCHMARK(BM_AddressSpaceWrite);

void BM_VaRangeSetAddSubtract(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    VaRangeSet set;
    for (int i = 0; i < 200; ++i) {
      const VirtAddr b = rng.NextBounded(1 << 20) * kPageSize;
      const VirtAddr e = b + (1 + rng.NextBounded(64)) * kPageSize;
      if (rng.Chance(0.7)) {
        set.Add({b, e});
      } else {
        set.Subtract({b, e});
      }
    }
    benchmark::DoNotOptimize(set.TotalBytes());
  }
}
BENCHMARK(BM_VaRangeSetAddSubtract);

void BM_RngNext(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngExponential(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Exponential(1.0));
  }
}
BENCHMARK(BM_RngExponential);

}  // namespace
}  // namespace javmm

BENCHMARK_MAIN();
