// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Ablation (multi-channel data plane, DESIGN.md §11): crosses the channel
// count with fault regimes and all four engines. The single-link data plane
// serializes post-copy demand fetches behind one stall-debt queue, so a
// latency spike taxes every fetch in series; striping the plane over N
// fault-isolated sub-links lets fetches overlap and confines a per-channel
// fault ("ch1:lat:...") to the slice sharded onto that sub-link. The
// headline row pair this exhibit gates on: post-copy under the pinned
// latency spike must stall strictly less at 4 channels than at 1.
//
// Every run must still verify and pass its trace audit -- the audit now
// includes the per-channel decomposition identities (each channel_transfer
// event sums back to its channel's wire meter, and the per-channel meters
// sum to the aggregate), so a sharding bug cannot hide in an aggregate.

#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

namespace {

struct FaultRegime {
  const char* name;
  // Spec used at channels == 1 (everything shares the one link).
  const char* single_spec;
  // Spec used at channels > 1: the same disturbance pinned to sub-link 1,
  // so the other channels stay healthy.
  const char* striped_spec;
};

constexpr FaultRegime kRegimes[] = {
    {"healthy", "", ""},
    {"lat-spike", "lat:0s-30s+20ms", "ch1:lat:0s-30s+20ms"},
    {"outage", "out:2s-3s", "ch1:out:2s-3s"},
    {"combined", "bw:0s-120s@0.5;loss:0.2;out:2s-2500ms",
     "bw:0s-120s@0.5;loss:0.2;ch1:out:2s-2500ms"},
};

constexpr int kChannelCounts[] = {1, 2, 4};

constexpr EngineKind kEngines[] = {EngineKind::kXenPrecopy, EngineKind::kJavmm,
                                   EngineKind::kStopAndCopy, EngineKind::kPostcopy};

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation: multi-channel data plane, crypto workload ===\n\n");

  ExperimentSet set(ParseBenchArgs(argc, argv));
  for (const FaultRegime& regime : kRegimes) {
    for (const int channels : kChannelCounts) {
      for (const EngineKind kind : kEngines) {
        RunOptions options;
        options.warmup = Duration::Seconds(20);  // Short warmup: the data plane stars here.
        options.channels = channels;
        options.fault_spec = channels > 1 ? regime.striped_spec : regime.single_spec;
        Scenario scenario;
        char label[64];
        std::snprintf(label, sizeof(label), "%s/%dch/%s", regime.name, channels,
                      EngineKindName(kind));
        scenario.label = label;
        scenario.spec = Workloads::Get("crypto");
        scenario.engine = kind;
        scenario.options = options;
        set.Add(std::move(scenario));
      }
    }
  }
  set.Run();

  Table table({"regime", "ch", "engine", "time(s)", "down(s)", "dwindow(s)", "stall(s)",
               "traffic(GiB)", "retry(MiB)", "bursts", "degraded", "verified"});
  Duration postcopy_spike_stall_1ch = Duration::Zero();
  Duration postcopy_spike_stall_4ch = Duration::Zero();
  size_t i = 0;
  for (const FaultRegime& regime : kRegimes) {
    for (const int channels : kChannelCounts) {
      for (const EngineKind kind : kEngines) {
        const RunOutput& out = set.out(i++);
        const MigrationResult& r = out.result;
        if (kind == EngineKind::kPostcopy && std::string(regime.name) == "lat-spike") {
          if (channels == 1) {
            postcopy_spike_stall_1ch = out.fault_stall;
          } else if (channels == 4) {
            postcopy_spike_stall_4ch = out.fault_stall;
          }
        }
        table.Row()
            .Cell(regime.name)
            .Cell(static_cast<int64_t>(channels))
            .Cell(EngineKindName(kind))
            .Cell(r.total_time.ToSecondsF(), 1)
            .Cell(r.downtime.Total().ToSecondsF(), 3)
            .Cell(out.degradation_window.ToSecondsF(), 2)
            .Cell(out.fault_stall.ToSecondsF(), 2)
            .Cell(GiBOf(r.total_wire_bytes), 2)
            .Cell(MiBOf(r.retry_wire_bytes), 2)
            .Cell(r.burst_faults)
            .Cell(r.degraded ? DegradeReasonName(r.degrade_reason) : "no")
            .Cell(r.verification.ok ? "yes" : "NO");
      }
    }
  }
  table.Print(std::cout);

  std::printf("\nshape check: the healthy 1ch rows reproduce the single-link exhibits\n"
              "bit-for-bit. Striping leaves total traffic unchanged (the shard is a\n"
              "partition) and splits it near-evenly across the per-channel meters. The\n"
              "fix shows in the lat-spike rows: at 1ch every post-copy demand fetch\n"
              "queues behind the spiked link, at 4ch only the fetches sharded onto ch1\n"
              "pay it and the rest overlap.\n");

  int exit_code = set.ExitCode();
  std::printf("\npost-copy fault stall under the pinned latency spike: 1ch %.2fs vs 4ch %.2fs\n",
              postcopy_spike_stall_1ch.ToSecondsF(), postcopy_spike_stall_4ch.ToSecondsF());
  if (!(postcopy_spike_stall_4ch < postcopy_spike_stall_1ch)) {
    std::fprintf(stderr, "FAILED: striping did not reduce the post-copy fault stall\n");
    exit_code = exit_code == 0 ? 1 : exit_code;
  }
  return exit_code;
}
