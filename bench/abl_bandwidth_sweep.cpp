// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Ablation (§6 "use JAVMM for large VMs with fast networks"): does JAVMM's
// advantage persist as the link gets faster? The paper argues yes, because
// VM sizes and dirtying rates grow with the hardware; here we hold the
// workload fixed and sweep the link from 1 to 10 Gbps, showing (a) where
// plain pre-copy starts converging and (b) that JAVMM still cuts traffic
// even when the time advantage narrows.

#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

int main(int argc, char** argv) {
  std::printf("=== Ablation: link-bandwidth sweep, derby workload ===\n\n");
  const double gbps[] = {1.0, 2.5, 5.0, 10.0};

  ExperimentSet set(ParseBenchArgs(argc, argv));
  for (const double g : gbps) {
    for (const bool assisted : {false, true}) {
      RunOptions options;
      options.lab.migration.link.bandwidth_bps = g * 1e9;
      char label[64];
      std::snprintf(label, sizeof(label), "%.1fGbps/%s", g, EngineName(assisted).c_str());
      set.Add(label, Workloads::Get("derby"), assisted, options);
    }
  }
  set.Run();

  Table table({"link(Gbps)", "engine", "time(s)", "traffic(GiB)", "downtime(s)", "iters",
               "verified"});
  size_t i = 0;
  for (const double g : gbps) {
    for (const bool assisted : {false, true}) {
      const RunOutput& out = set.out(i++);
      table.Row()
          .Cell(g, 1)
          .Cell(EngineName(assisted))
          .Cell(out.result.total_time.ToSecondsF(), 1)
          .Cell(GiBOf(out.result.total_wire_bytes), 2)
          .Cell(out.result.downtime.Total().ToSecondsF(), 2)
          .Cell(static_cast<int64_t>(out.result.iteration_count()))
          .Cell(out.result.verification.ok ? "yes" : "NO");
    }
  }
  table.Print(std::cout);
  std::printf("\nshape check: at 1 Gbps derby's ~340 MiB/s dirtying swamps the link and Xen\n"
              "is forced into a long stop-and-copy; as bandwidth rises past the dirtying\n"
              "rate, Xen converges and the completion-time gap narrows -- but JAVMM still\n"
              "moves a fraction of the traffic (garbage is never worth shipping).\n");
  return set.ExitCode();
}
