// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Figure 5: Java heap usage and GC behaviour of the nine SPECjvm2008
// workloads in a 2 GB VM with a 1 GiB young-generation cap (§4.2):
//   (a) average memory consumption, young vs old generation;
//   (b) garbage vs live data per minor GC;
//   (c) minor GC duration.
// Paper anchors: 8 of 9 workloads are young-dominated (up to 98% of heap);
// >97% of young memory is garbage for all but scimark; compiler has the
// longest GCs; derby/compiler/xml/sunflow max out the 1 GiB young cap.

#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

namespace {

struct Profile {
  std::string name;
  double young_mib_avg = 0;
  double old_mib_avg = 0;
  double garbage_mib = 0;
  double live_mib = 0;
  double gc_secs = 0;
  int64_t gc_count = 0;
};

Profile ProfileWorkload(const WorkloadSpec& spec) {
  LabConfig config;
  config.seed = 42;
  MigrationLab lab(spec, config);
  // The paper profiles 10 minutes; sample consumption every 5 s.
  Profile p;
  p.name = spec.name;
  const int kSamples = 120;
  double young_sum = 0;
  double old_sum = 0;
  for (int i = 0; i < kSamples; ++i) {
    lab.Run(Duration::Seconds(5));
    young_sum += MiBOf(lab.app().heap().young_committed_bytes());
    old_sum += MiBOf(lab.app().heap().old_used_bytes());
  }
  p.young_mib_avg = young_sum / kSamples;
  p.old_mib_avg = old_sum / kSamples;
  const GcLog& log = lab.app().heap().gc_log();
  double garbage = 0;
  double live = 0;
  for (const MinorGcResult& gc : log.minor) {
    garbage += MiBOf(gc.garbage_bytes);
    live += MiBOf(gc.live_bytes);
  }
  p.gc_count = log.minor_count();
  if (p.gc_count > 0) {
    p.garbage_mib = garbage / static_cast<double>(p.gc_count);
    p.live_mib = live / static_cast<double>(p.gc_count);
    p.gc_secs = log.MeanMinorDuration().ToSecondsF();
  }
  return p;
}

}  // namespace

int main() {
  std::printf("=== Figure 5: heap usage and GC behaviour, SPECjvm2008 in a 2 GiB VM ===\n");
  std::printf("(10-minute runs, young generation capped at 1 GiB)\n\n");

  std::vector<Profile> profiles;
  for (const WorkloadSpec& spec : Workloads::All()) {
    profiles.push_back(ProfileWorkload(spec));
  }

  std::printf("--- Fig 5(a): average memory consumption of the Java heap ---\n");
  Table a({"workload", "young(MiB)", "old(MiB)", "young share", "bar(young)"});
  for (const Profile& p : profiles) {
    const double share = p.young_mib_avg / (p.young_mib_avg + p.old_mib_avg);
    a.Row()
        .Cell(p.name)
        .Cell(p.young_mib_avg, 0)
        .Cell(p.old_mib_avg, 0)
        .Cell(share, 2)
        .Cell(AsciiBar(p.young_mib_avg, 1536, 30));
  }
  a.Print(std::cout);
  std::printf("shape check: all but scimark are young-dominated (paper: up to 98%%)\n\n");

  std::printf("--- Fig 5(b): garbage vs live data in a minor GC ---\n");
  Table b({"workload", "garbage(MiB)", "live(MiB)", "garbage frac", "minor GCs"});
  for (const Profile& p : profiles) {
    const double frac =
        p.garbage_mib + p.live_mib > 0 ? p.garbage_mib / (p.garbage_mib + p.live_mib) : 0;
    b.Row()
        .Cell(p.name)
        .Cell(p.garbage_mib, 0)
        .Cell(p.live_mib, 1)
        .Cell(frac, 3)
        .Cell(p.gc_count);
  }
  b.Print(std::cout);
  std::printf("shape check: >97%% garbage for all workloads except scimark (paper)\n\n");

  std::printf("--- Fig 5(c): duration of a minor GC ---\n");
  Table c({"workload", "mean GC(s)", "bar"});
  for (const Profile& p : profiles) {
    c.Row().Cell(p.name).Cell(p.gc_secs, 2).Cell(AsciiBar(p.gc_secs, 1.5, 30));
  }
  c.Print(std::cout);
  std::printf("shape check: cat-1 workloads have the longest GCs (paper: compiler ~1.5 s, "
              "derby ~0.9 s); collecting young garbage is faster than sending it over\n"
              "a 1 Gbps link (e.g. 950 MiB of garbage: ~1 s GC vs >7 s transfer)\n");
  return 0;
}
