// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Ablation: Application-Level Ballooning (Salomie et al., EuroSys'13) as the
// paper's §2 discusses it -- "ALB may be used to shrink the Java heap before
// migration begins and send less dirty data during migration, with the
// tradeoff of potentially lower application performance; application
// performance may degrade as the heap becomes smaller since garbage
// collection may be triggered more frequently."
//
// We deflate derby's young generation ahead of migration, migrate with plain
// pre-copy, and compare against vanilla Xen and JAVMM on all three migration
// metrics plus the throughput cost the balloon itself imposes.

#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

namespace {

struct AlbOutcome {
  MigrationResult result;
  double throughput_before = 0;  // ops/s before deflation.
  double throughput_deflated = 0;  // ops/s while deflated (pre-migration).
  double gc_time_share_deflated = 0;
};

AlbOutcome RunAlb(int64_t balloon_young_cap) {
  LabConfig config;
  config.seed = 13;
  config.migration.application_assisted = false;  // ALB uses plain pre-copy.
  MigrationLab lab(Workloads::Get("derby"), config);
  AlbOutcome out;
  lab.Run(Duration::Seconds(100));
  out.throughput_before =
      lab.analyzer().series().MeanInWindow(lab.clock().now() - Duration::Seconds(30),
                                           lab.clock().now());
  // Deflate 20 s ahead of the migration, as an orchestrator would.
  lab.app().heap().SetBalloonedYoungCap(balloon_young_cap);
  const Duration gc_before = lab.app().total_gc_pause();
  lab.Run(Duration::Seconds(20));
  out.throughput_deflated =
      lab.analyzer().series().MeanInWindow(lab.clock().now() - Duration::Seconds(15),
                                           lab.clock().now());
  out.gc_time_share_deflated =
      (lab.app().total_gc_pause() - gc_before).ToSecondsF() / 20.0;
  out.result = lab.Migrate();
  // Re-inflate at the destination.
  lab.app().heap().SetBalloonedYoungCap(1024 * kMiB);
  lab.Run(Duration::Seconds(30));
  return out;
}

}  // namespace

int main() {
  std::printf("=== Ablation: ALB (heap ballooning) vs JAVMM, derby workload ===\n\n");

  Table table({"strategy", "time(s)", "traffic(GiB)", "downtime(s)", "ops/s pre-migration",
               "GC share", "verified"});

  // Vanilla and JAVMM references.
  for (const bool assisted : {false, true}) {
    RunOptions options;
    options.seed = 13;
    const RunOutput out = RunMigrationExperiment(Workloads::Get("derby"), assisted, options);
    table.Row()
        .Cell(assisted ? "JAVMM" : "Xen (no balloon)")
        .Cell(out.result.total_time.ToSecondsF(), 1)
        .Cell(GiBOf(out.result.total_wire_bytes), 2)
        .Cell(out.result.downtime.Total().ToSecondsF(), 2)
        .Cell(out.throughput.MeanInWindow(TimePoint::Epoch() + Duration::Seconds(90),
                                          TimePoint::Epoch() + Duration::Seconds(118)),
              2)
        .Cell("~4%")
        .Cell(out.result.verification.ok ? "yes" : "NO");
  }

  for (const int64_t cap : {256 * kMiB, 128 * kMiB, 64 * kMiB}) {
    const AlbOutcome out = RunAlb(cap);
    char label[64];
    std::snprintf(label, sizeof(label), "ALB -> %lld MiB young",
                  static_cast<long long>(cap / kMiB));
    char gc_share[16];
    std::snprintf(gc_share, sizeof(gc_share), "%.0f%%", out.gc_time_share_deflated * 100);
    table.Row()
        .Cell(label)
        .Cell(out.result.total_time.ToSecondsF(), 1)
        .Cell(GiBOf(out.result.total_wire_bytes), 2)
        .Cell(out.result.downtime.Total().ToSecondsF(), 2)
        .Cell(out.throughput_deflated, 2)
        .Cell(gc_share)
        .Cell(out.result.verification.ok ? "yes" : "NO");
  }
  table.Print(std::cout);

  std::printf("\nshape check (paper §2): deflating the heap does cut pre-copy's traffic and\n"
              "downtime versus vanilla Xen, but the application pays continuously -- GC\n"
              "frequency rises and throughput drops while deflated -- and even the best\n"
              "balloon stays behind JAVMM on every migration metric while JAVMM costs the\n"
              "application nothing until the final enforced GC.\n");
  return 0;
}
