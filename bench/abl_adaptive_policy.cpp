// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Ablation (§6 "make the proposed framework intelligent"): the adaptive
// policy inspects each workload's GC history and the link, and decides
// whether to migrate with JAVMM or plain pre-copy. We compare the policy's
// pick against both fixed choices across all nine workloads.

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "src/core/policy.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

int main() {
  std::printf("=== Ablation: adaptive engine-selection policy (§6) ===\n\n");
  Table table({"workload", "cat", "policy picks", "picked downtime(s)", "other downtime(s)",
               "regret(s)"});
  double total_regret = 0;
  for (const WorkloadSpec& spec : Workloads::All()) {
    // Warm up once to collect GC history, then consult the policy.
    LabConfig probe_config;
    probe_config.seed = 17;
    PolicyDecision decision;
    {
      MigrationLab probe(spec, probe_config);
      probe.Run(Duration::Seconds(90));
      decision = AdaptiveMigrationPolicy::Decide(probe.app().heap(),
                                                 probe_config.migration.link);
    }
    RunOptions options;
    options.warmup = Duration::Seconds(90);
    options.seed = 17;
    const RunOutput picked = RunMigrationExperiment(spec, decision.use_assisted, options);
    const RunOutput other = RunMigrationExperiment(spec, !decision.use_assisted, options);
    const double picked_down = picked.result.downtime.Total().ToSecondsF();
    const double other_down = other.result.downtime.Total().ToSecondsF();
    const double regret = std::max(0.0, picked_down - other_down);
    total_regret += regret;
    table.Row()
        .Cell(spec.name)
        .Cell(static_cast<int64_t>(spec.category))
        .Cell(decision.use_assisted ? "JAVMM" : "Xen")
        .Cell(picked_down, 2)
        .Cell(other_down, 2)
        .Cell(regret, 2);
  }
  table.Print(std::cout);
  std::printf("\ntotal downtime regret vs oracle: %.2f s\n", total_regret);
  std::printf("shape check: the policy keeps JAVMM on for the garbage-rich categories 1-2\n"
              "and falls back to plain pre-copy for scimark-like workloads, realising the\n"
              "paper's \"turn off JAVMM and let migration proceed with traditional\n"
              "pre-copying when those workload scenarios are encountered\".\n");
  return 0;
}
