// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Shared helpers for the experiment (bench) binaries. Each binary regenerates
// one paper exhibit; see DESIGN.md §3 for the experiment index.

#ifndef JAVMM_BENCH_COMMON_H_
#define JAVMM_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "src/core/migration_lab.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

namespace javmm {
namespace bench {

// One full experiment run at paper scale: warm the workload up, migrate,
// keep running at the destination.
struct RunOutput {
  MigrationResult result;
  TimeSeries throughput;
  Duration observed_downtime = Duration::Zero();
  int64_t young_at_migration = 0;
  int64_t old_at_migration = 0;
};

struct RunOptions {
  Duration warmup = Duration::Seconds(120);
  Duration cooldown = Duration::Seconds(40);
  uint64_t seed = 1;
  LabConfig lab;
};

inline RunOutput RunMigrationExperiment(const WorkloadSpec& spec, bool assisted,
                                        const RunOptions& options = {}) {
  LabConfig config = options.lab;
  config.seed = options.seed;
  config.migration.application_assisted = assisted;
  MigrationLab lab(spec, config);
  lab.Run(options.warmup);
  RunOutput out;
  out.young_at_migration = lab.app().heap().young_committed_bytes();
  out.old_at_migration = lab.app().heap().old_used_bytes();
  const TimePoint migration_start = lab.clock().now();
  out.result = lab.Migrate();
  lab.Run(options.cooldown);
  out.throughput = lab.analyzer().series();
  out.observed_downtime = lab.analyzer().ObservedDowntime(migration_start, lab.clock().now());
  if (!out.result.verification.ok) {
    std::fprintf(stderr, "WARNING: verification failed for %s (%s): %s\n", spec.name.c_str(),
                 assisted ? "JAVMM" : "Xen", out.result.verification.detail.c_str());
  }
  if (out.result.trace_audit.ran && !out.result.trace_audit.ok) {
    std::fprintf(stderr, "WARNING: trace audit failed for %s (%s): %s\n", spec.name.c_str(),
                 assisted ? "JAVMM" : "Xen", out.result.trace_audit.ToString().c_str());
  }
  return out;
}

// Aggregates one metric over repeated seeds.
struct MetricSummary {
  Summary time_s;
  Summary traffic_gib;
  Summary downtime_s;
  Summary cpu_s;

  void Add(const MigrationResult& result) {
    time_s.Add(result.total_time.ToSecondsF());
    traffic_gib.Add(static_cast<double>(result.total_wire_bytes) / static_cast<double>(kGiB));
    downtime_s.Add(result.downtime.Total().ToSecondsF());
    cpu_s.Add(result.cpu_time.ToSecondsF());
  }
};

inline std::string EngineName(bool assisted) { return assisted ? "JAVMM" : "Xen"; }

inline double MiBOf(int64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}
inline double GiBOf(int64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kGiB);
}
inline double PagesToMiB(int64_t pages) { return MiBOf(pages * kPageSize); }

inline double ReductionPct(double xen, double javmm) {
  return xen > 0 ? (1.0 - javmm / xen) * 100.0 : 0.0;
}

}  // namespace bench
}  // namespace javmm

#endif  // JAVMM_BENCH_COMMON_H_
