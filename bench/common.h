// Copyright (c) 2026 The JAVMM Reproduction Authors.
// Shared helpers for the experiment (bench) binaries. Each binary regenerates
// one paper exhibit; see DESIGN.md §3 for the experiment index.
//
// Sweep-style exhibits describe their runs as Scenarios and execute them
// through an ExperimentSet, which drives the ScenarioRunner (src/runner/):
// `--jobs=N` parallelizes any exhibit with bit-identical results, `--json=F`
// exports the per-run report as JSON lines, and ExitCode() is non-zero when
// any run failed verification or its trace audit.

#ifndef JAVMM_BENCH_COMMON_H_
#define JAVMM_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/migration_lab.h"
#include "src/runner/runner.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

namespace javmm {
namespace bench {

inline std::string EngineName(bool assisted) { return assisted ? "JAVMM" : "Xen"; }

inline void WarnOnFailure(const RunRecord& rec) {
  const char* label = rec.scenario.label.c_str();
  if (!rec.ran) {
    std::fprintf(stderr, "ERROR: run %s did not finish: %s\n", label, rec.error.c_str());
    return;
  }
  const MigrationResult& r = rec.output.result;
  if (rec.verification_failed()) {
    std::fprintf(stderr, "FAILED: verification for %s: %s\n", label,
                 r.verification.detail.c_str());
  }
  if (rec.audit_failed()) {
    std::fprintf(stderr, "FAILED: trace audit for %s: %s\n", label,
                 r.trace_audit.ToString().c_str());
  }
}

// Flags shared by every sweep binary.
struct BenchArgs {
  int jobs = 1;           // --jobs=N (0 = one worker per hardware thread).
  std::string json_path;  // --json=FILE: JSON-lines run report.
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      args.jobs = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      args.json_path = arg + 7;
    } else {
      std::fprintf(stderr, "unknown flag %s (supported: --jobs=N, --json=FILE)\n", arg);
      std::exit(2);
    }
  }
  return args;
}

// Collects scenarios, runs them all at once through the ScenarioRunner, then
// hands the outputs back by submission index. Typical exhibit structure:
//
//   ExperimentSet set(ParseBenchArgs(argc, argv));
//   for (...) set.Add(label, spec, assisted, options);   // describe runs
//   set.Run();                                           // execute (parallel)
//   for (...) table.Row()... set.out(i) ...;             // render, in order
//   return set.ExitCode();
class ExperimentSet {
 public:
  explicit ExperimentSet(const BenchArgs& args) : args_(args) {}

  size_t Add(Scenario scenario) {
    scenarios_.push_back(std::move(scenario));
    return scenarios_.size() - 1;
  }
  size_t Add(std::string label, const WorkloadSpec& spec, bool assisted,
             const RunOptions& options = {}) {
    Scenario scenario;
    scenario.label = std::move(label);
    scenario.spec = spec;
    scenario.engine = assisted ? EngineKind::kJavmm : EngineKind::kXenPrecopy;
    scenario.options = options;
    return Add(std::move(scenario));
  }

  const RunReport& Run() {
    report_ = ScenarioRunner(args_.jobs).RunAll(scenarios_);
    for (const RunRecord& rec : report_.runs) {
      WarnOnFailure(rec);
    }
    if (!args_.json_path.empty()) {
      std::ofstream os(args_.json_path);
      if (!os) {
        std::fprintf(stderr, "ERROR: cannot write %s\n", args_.json_path.c_str());
        ++report_.errors;
      } else {
        report_.ExportJsonLines(os);
      }
    }
    return report_;
  }

  const RunReport& report() const { return report_; }
  const RunRecord& record(size_t i) const { return report_.runs.at(i); }
  const RunOutput& out(size_t i) const { return record(i).output; }
  const MigrationResult& result(size_t i) const { return out(i).result; }

  // Non-zero when any run failed verification, failed its trace audit, or
  // did not finish -- so a broken exhibit cannot exit clean.
  int ExitCode() const {
    if (!report_.all_ok()) {
      std::fprintf(stderr,
                   "%lld run(s) failed (%lld verification, %lld audit, %lld errors)\n",
                   static_cast<long long>(report_.failure_count()),
                   static_cast<long long>(report_.verification_failures),
                   static_cast<long long>(report_.audit_failures),
                   static_cast<long long>(report_.errors));
      return 1;
    }
    return 0;
  }

 private:
  BenchArgs args_;
  std::vector<Scenario> scenarios_;
  RunReport report_;
};

// Serial single-run helper for the non-sweep exhibits. Prints a warning on
// verification/audit failure; callers that aggregate should prefer
// ExperimentSet, which also fails the binary's exit code.
inline RunOutput RunMigrationExperiment(const WorkloadSpec& spec, bool assisted,
                                        const RunOptions& options = {}) {
  Scenario scenario;
  scenario.label = spec.name + "/" + EngineName(assisted);
  scenario.spec = spec;
  scenario.engine = assisted ? EngineKind::kJavmm : EngineKind::kXenPrecopy;
  scenario.options = options;
  const RunRecord rec = ScenarioRunner::RunOne(scenario);
  WarnOnFailure(rec);
  return rec.output;
}

// True when the run's numbers are trustworthy: it completed and both
// integrity checks passed.
inline bool RunClean(const MigrationResult& result) {
  return result.completed && result.verification.ok &&
         (!result.trace_audit.ran || result.trace_audit.ok);
}

// Aggregates one engine's metrics over repeated seeds. Only clean completed
// runs enter the headline distributions; aborted runs, fallback runs and
// integrity failures are tallied (and fallbacks summarized) separately so
// they cannot silently skew the paper-facing means.
struct MetricSummary {
  Summary time_s;
  Summary traffic_gib;
  Summary downtime_s;
  Summary cpu_s;

  // Runs that completed only via the unassisted safety fallback: their
  // time/downtime describe a different mechanism, so they get their own
  // distributions.
  Summary fallback_time_s;
  Summary fallback_downtime_s;

  int64_t clean = 0;
  int64_t fallbacks = 0;
  int64_t aborted = 0;
  int64_t failed = 0;  // Verification or trace-audit failure: excluded.

  void Add(const MigrationResult& result) {
    if ((result.completed && !result.verification.ok) ||
        (result.trace_audit.ran && !result.trace_audit.ok)) {
      ++failed;
      return;
    }
    if (!result.completed) {
      ++aborted;
      return;
    }
    if (result.fell_back_unassisted) {
      ++fallbacks;
      fallback_time_s.Add(result.total_time.ToSecondsF());
      fallback_downtime_s.Add(result.downtime.Total().ToSecondsF());
      return;
    }
    ++clean;
    time_s.Add(result.total_time.ToSecondsF());
    traffic_gib.Add(static_cast<double>(result.total_wire_bytes) / static_cast<double>(kGiB));
    downtime_s.Add(result.downtime.Total().ToSecondsF());
    cpu_s.Add(result.cpu_time.ToSecondsF());
  }

  bool any_failed() const { return failed > 0; }

  // Compact per-cell tally, e.g. "3 ok" or "2 ok +1 fb +1 FAIL".
  std::string CountsLabel() const {
    std::string out = std::to_string(clean) + " ok";
    if (fallbacks > 0) {
      out += " +" + std::to_string(fallbacks) + " fb";
    }
    if (aborted > 0) {
      out += " +" + std::to_string(aborted) + " abort";
    }
    if (failed > 0) {
      out += " +" + std::to_string(failed) + " FAIL";
    }
    return out;
  }
};

inline double MiBOf(int64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}
inline double GiBOf(int64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kGiB);
}
inline double PagesToMiB(int64_t pages) { return MiBOf(pages * kPageSize); }

inline double ReductionPct(double xen, double javmm) {
  return xen > 0 ? (1.0 - javmm / xen) * 100.0 : 0.0;
}

}  // namespace bench
}  // namespace javmm

#endif  // JAVMM_BENCH_COMMON_H_
