// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Ablation (§6 future work): JAVMM ported to a G1-style regionized collector
// whose young generation is a *non-contiguous, continuously changing* set of
// regions. The port adds one protocol refinement -- after each evacuation the
// agent re-reports the current young ranges so freshly claimed regions regain
// cleared transfer bits -- and we show (a) the port preserves JAVMM's wins
// over plain pre-copy, and (b) what that re-report is worth.

#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "src/core/liveness.h"
#include "src/workload/g1_application.h"
#include "src/workload/os_process.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

namespace {

MigrationResult RunG1(bool assisted, uint64_t seed) {
  SimClock clock;
  GuestPhysicalMemory memory(2 * kGiB);
  GuestKernel kernel(&memory, &clock);
  kernel.LoadLkm(LkmConfig{});
  Rng rng(seed);
  OsBackgroundProcess os(&kernel, OsProcessConfig{}, rng.Fork());

  WorkloadSpec spec = Workloads::Get("derby");
  RegionHeapConfig heap;
  heap.region_bytes = 4 * kMiB;
  heap.total_regions = 384;       // 1.5 GiB heap reservation.
  heap.max_young_regions = 256;   // 1 GiB young cap, as in Table 2.
  heap.initial_young_regions = 16;
  G1JavaApplication app(&kernel, spec, heap, rng.Fork());
  clock.Advance(Duration::Seconds(120));

  MigrationConfig mig;
  mig.application_assisted = assisted;
  MigrationEngine engine(&kernel, mig);
  G1LivenessSource live(&kernel, &app);
  RangeLivenessSource os_live(&kernel, os.pid());
  os_live.AddRange(os.resident_range());
  engine.AddRequiredPfnSource(&live);
  engine.AddRequiredPfnSource(&os_live);
  MigrationResult result = engine.Migrate();
  clock.Advance(Duration::Seconds(20));
  return result;
}

}  // namespace

int main() {
  std::printf("=== Ablation: JAVMM on a G1-style regionized collector (§6) ===\n");
  std::printf("(derby-like workload, 4 MiB regions, non-contiguous 1 GiB young set)\n\n");

  Table table({"collector / engine", "time(s)", "traffic(GiB)", "downtime(s)", "verified"});
  for (const bool assisted : {false, true}) {
    const MigrationResult g1 = RunG1(assisted, 21);
    char label[64];
    std::snprintf(label, sizeof(label), "G1 / %s", assisted ? "JAVMM" : "Xen");
    table.Row()
        .Cell(label)
        .Cell(g1.total_time.ToSecondsF(), 1)
        .Cell(GiBOf(g1.total_wire_bytes), 2)
        .Cell(g1.downtime.Total().ToSecondsF(), 2)
        .Cell(g1.verification.ok ? "yes" : "NO");
  }
  // Classic generational collector for reference.
  for (const bool assisted : {false, true}) {
    RunOptions options;
    options.seed = 21;
    const RunOutput out = RunMigrationExperiment(Workloads::Get("derby"), assisted, options);
    char label[64];
    std::snprintf(label, sizeof(label), "classic / %s", assisted ? "JAVMM" : "Xen");
    table.Row()
        .Cell(label)
        .Cell(out.result.total_time.ToSecondsF(), 1)
        .Cell(GiBOf(out.result.total_wire_bytes), 2)
        .Cell(out.result.downtime.Total().ToSecondsF(), 2)
        .Cell(out.result.verification.ok ? "yes" : "NO");
  }
  table.Print(std::cout);
  std::printf("\nshape check: the JAVMM protocol carries over to a region-based collector\n"
              "-- the young set is reported as multiple VA ranges, region releases flow\n"
              "through the shrink/PFN-cache path, region claims through re-reports, and\n"
              "the enforced evacuation's survivors through must-transfer ranges. The\n"
              "wins over plain pre-copy match the contiguous-heap results.\n");
  return 0;
}
