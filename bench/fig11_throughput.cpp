// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Figure 11: effect of migration on workload throughput (operations/sec,
// observed from outside the VM once per second). Migration begins after the
// workload has run for 300 s. Paper: with JAVMM the workload shows no
// noticeable degradation except a short pause; with Xen an extended downtime
// is visible (derby ~9 s).

#include <cstdio>
#include <iostream>

#include "bench/common.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

namespace {

void PrintTimeline(const WorkloadSpec& spec) {
  std::printf("--- Fig 11: %s (ops/sec; migration starts at t=300 s) ---\n",
              spec.name.c_str());
  RunOptions options;
  options.warmup = Duration::Seconds(300);
  options.cooldown = Duration::Seconds(60);
  const RunOutput xen = RunMigrationExperiment(spec, /*assisted=*/false, options);
  const RunOutput javmm_run = RunMigrationExperiment(spec, /*assisted=*/true, options);

  // Print the 280..360 s window, like the paper's x-axis.
  Table table({"t(s)", "Xen ops/s", "JAVMM ops/s", "Xen", "JAVMM"});
  const auto& xs = xen.throughput.points();
  const auto& js = javmm_run.throughput.points();
  double peak = 0;
  for (const auto& p : xs) {
    peak = std::max(peak, p.value);
  }
  for (size_t i = 0; i < std::min(xs.size(), js.size()); ++i) {
    const double t = xs[i].t.ToSecondsF();
    if (t < 280 || t > 360) {
      continue;
    }
    table.Row()
        .Cell(t, 0)
        .Cell(xs[i].value, 2)
        .Cell(js[i].value, 2)
        .Cell(AsciiBar(xs[i].value, peak, 16))
        .Cell(AsciiBar(js[i].value, peak, 16));
  }
  table.Print(std::cout);
  std::printf("observed downtime: Xen %.1f s vs JAVMM %.1f s (engine-reported: "
              "%.2f s vs %.2f s)\n\n",
              xen.observed_downtime.ToSecondsF(), javmm_run.observed_downtime.ToSecondsF(),
              xen.result.downtime.Total().ToSecondsF(),
              javmm_run.result.downtime.Total().ToSecondsF());
}

}  // namespace

int main() {
  std::printf("=== Figure 11: workload throughput around migration ===\n\n");
  for (const WorkloadSpec& spec : Workloads::CategoryRepresentatives()) {
    PrintTimeline(spec);
  }
  std::printf("shape check: JAVMM's stall is ~1 s for derby/crypto; Xen's stall is several\n"
              "seconds for derby; for scimark the two are comparable (JAVMM slightly worse).\n");
  return 0;
}
