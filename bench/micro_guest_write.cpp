// Copyright (c) 2026 The JAVMM Reproduction Authors.
//
// Guest store pipeline micro-exhibit (DESIGN.md §15): drives the memory
// substrate directly -- no migration engine -- through the four store shapes
// the run-write fast path was built for, and reports the deterministic
// store-path counters (write_runs / pages_written / pte_lookups) per shape:
//
//   commit_populate   CommitRange boot-populate zeroing sweeps (the OS and
//                     cache warm fills): fresh frames are ascending, so the
//                     whole commit collapses to one WriteRun and zero
//                     store-path table probes.
//   seq_sweep         cyclic sequential WriteRange passes over a committed
//                     heap (the kSweep old-gen mutator): one probe per
//                     contiguous run.
//   per_page_baseline the same sweep issued as a per-page Touch loop -- the
//                     pre-batching code path, kept as the contrast row and
//                     as the equivalence reference.
//   random_touch      uniform single-page touches (the OS hot-set dirtier):
//                     the probe-per-page floor batching cannot beat.
//
// Exit gates (exact, host-independent):
//   * equivalence: seq_sweep and per_page_baseline leave byte-identical
//     frame versions, total_writes, and dirty-log state;
//   * coalescing: seq_sweep writes >= 8 pages per table probe.
//
// --jobs is accepted for nightly-loop uniformity (the substrate work is
// single-threaded); --json=FILE writes one JSON line per shape.

// lint: banned-call-ok (wall-clock here profiles the host, never simulated results)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/base/perf.h"
#include "src/base/rng.h"
#include "src/mem/address_space.h"
#include "src/mem/dirty_log.h"
#include "src/mem/physical_memory.h"

using namespace javmm;         // NOLINT
using namespace javmm::bench;  // NOLINT

namespace {

constexpr int64_t kVmBytes = 256 * kMiB;
constexpr int64_t kHeapPages = 48 * 1024;  // 192 MiB committed heap.
constexpr int64_t kSweepPasses = 40;
constexpr int64_t kRandomTouches = 400 * 1000;

struct ShapeResult {
  std::string name;
  int64_t wall_ms = 0;
  PerfCounters counters;
};

// One substrate per shape: guest memory with a dirty log attached (so the
// marking path is exercised exactly as under migration) and a perf sink.
struct Substrate {
  GuestPhysicalMemory memory;
  AddressSpace space;
  DirtyLog log;
  PerfCounters perf;
  VaRange heap{};

  Substrate() : memory(kVmBytes), space(&memory), log(memory.frame_count()) {
    memory.AttachDirtyLog(&log);
    memory.set_perf(&perf);
  }

  void Commit() {
    heap = space.ReserveVa(kHeapPages * kPageSize);
    CHECK(space.CommitRange(heap.begin, heap.bytes()));
  }
};

ShapeResult Measure(const std::string& name, Substrate& substrate,
                    void (*body)(Substrate&)) {
  // lint: banned-call-ok (wall-clock profiles the host, never simulated results)
  const auto wall_start = std::chrono::steady_clock::now();
  body(substrate);
  // lint: banned-call-ok (wall-clock profiles the host, never simulated results)
  const auto wall_end = std::chrono::steady_clock::now();
  ShapeResult out;
  out.name = name;
  out.wall_ms = static_cast<int64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(wall_end - wall_start).count());
  out.counters = substrate.perf;
  return out;
}

void CommitPopulate(Substrate& s) { s.Commit(); }

void SeqSweep(Substrate& s) {
  s.Commit();
  for (int64_t pass = 0; pass < kSweepPasses; ++pass) {
    s.space.WriteRange(s.heap.begin, s.heap.bytes());
  }
}

void PerPageBaseline(Substrate& s) {
  s.Commit();
  for (int64_t pass = 0; pass < kSweepPasses; ++pass) {
    for (int64_t page = 0; page < kHeapPages; ++page) {
      s.space.Touch(s.heap.begin + static_cast<uint64_t>(page) *
                                       static_cast<uint64_t>(kPageSize));
    }
  }
}

void RandomTouch(Substrate& s) {
  s.Commit();
  Rng rng(1);
  for (int64_t i = 0; i < kRandomTouches; ++i) {
    const uint64_t page = rng.NextBounded(static_cast<uint64_t>(kHeapPages));
    s.space.Touch(s.heap.begin + page * static_cast<uint64_t>(kPageSize));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  (void)args.jobs;
  std::printf("=== Guest store pipeline: run coalescing vs per-page baseline ===\n\n");

  Substrate commit_sub;
  Substrate sweep_sub;
  Substrate per_page_sub;
  Substrate random_sub;
  std::vector<ShapeResult> results;
  results.push_back(Measure("commit_populate", commit_sub, CommitPopulate));
  results.push_back(Measure("seq_sweep", sweep_sub, SeqSweep));
  results.push_back(Measure("per_page_baseline", per_page_sub, PerPageBaseline));
  results.push_back(Measure("random_touch", random_sub, RandomTouch));

  Table table({"shape", "wall(ms)", "write_runs", "pages_written", "pte_lookups", "pg/pte"});
  for (const ShapeResult& r : results) {
    const double pages_per_probe =
        r.counters.pte_lookups > 0 ? static_cast<double>(r.counters.pages_written) /
                                         static_cast<double>(r.counters.pte_lookups)
                                   : 0.0;
    table.Row()
        .Cell(r.name)
        .Cell(r.wall_ms)
        .Cell(r.counters.write_runs)
        .Cell(r.counters.pages_written)
        .Cell(r.counters.pte_lookups)
        .Cell(pages_per_probe, 1);
  }
  table.Print(std::cout);

  if (!args.json_path.empty()) {
    std::ofstream os(args.json_path);
    if (!os) {
      std::fprintf(stderr, "ERROR: cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    for (const ShapeResult& r : results) {
      os << "{\"exhibit\":\"" << r.name << "\",\"wall_ms\":" << r.wall_ms
         << ",\"counters\":" << r.counters.ToJson() << "}\n";
    }
  }

  // Gate 1: the batched sweep and the per-page loop must leave identical
  // dirty state -- same frame versions, same write totals, same log bits.
  int failures = 0;
  if (sweep_sub.memory.versions() != per_page_sub.memory.versions() ||
      sweep_sub.memory.total_writes() != per_page_sub.memory.total_writes() ||
      sweep_sub.log.total_marks() != per_page_sub.log.total_marks() ||
      sweep_sub.log.CountDirty() != per_page_sub.log.CountDirty()) {
    std::fprintf(stderr, "FAILED: seq_sweep and per_page_baseline dirty state diverged\n");
    ++failures;
  }
  // Gate 2: the sweep must actually coalesce (>= 8 pages per probe).
  const PerfCounters& sweep = sweep_sub.perf;
  if (sweep.pte_lookups * 8 > sweep.pages_written) {
    std::fprintf(stderr, "FAILED: seq_sweep coalescing: %lld probes for %lld pages\n",
                 static_cast<long long>(sweep.pte_lookups),
                 static_cast<long long>(sweep.pages_written));
    ++failures;
  }
  if (failures == 0) {
    std::printf("\nequivalence + coalescing gates: ok\n");
  }
  return failures == 0 ? 0 : 1;
}
